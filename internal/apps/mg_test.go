package apps

import (
	"math"
	"testing"

	"spasm/internal/app"
	"spasm/internal/machine"
	"spasm/internal/stats"
)

func runMG(t *testing.T, kind machine.Kind, p, n, cycles int) (*MG, *stats.Run, *app.Result) {
	t.Helper()
	mg := &MG{N: n, Cycles: cycles, Pre: 2, Post: 2, Seed: 1}
	res, err := app.Run(mg, machine.Config{Kind: kind, Topology: "mesh", P: p})
	if err != nil {
		t.Fatal(err)
	}
	return mg, res.Stats, res
}

func TestMGExtendedRegistry(t *testing.T) {
	prog, err := NewExtended("mg", Tiny, 1)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Name() != "mg" {
		t.Errorf("name = %q", prog.Name())
	}
	if _, err := NewExtended("bogus", Tiny, 1); err == nil {
		t.Error("unknown extended workload accepted")
	}
	for _, name := range ExtendedNames() {
		for _, suite := range Names() {
			if name == suite {
				t.Errorf("extended workload %q leaked into the paper suite", name)
			}
		}
	}
}

func TestMGRejectsNonNestingSize(t *testing.T) {
	mg := &MG{N: 256, Cycles: 1, Pre: 1, Post: 1, Seed: 1}
	if _, err := app.Run(mg, machine.Config{Kind: machine.Ideal, P: 2}); err == nil {
		t.Error("non-nesting grid size accepted")
	}
}

func TestMGConvergesOnEveryMachine(t *testing.T) {
	// Check() enforces >= 3x residual reduction per V-cycle.
	for _, kind := range machine.Kinds() {
		runMG(t, kind, 4, 255, 3)
	}
}

func TestMGResidualDropsPerCycle(t *testing.T) {
	red := func(cycles int) float64 {
		mg, _, _ := runMG(t, machine.Ideal, 4, 255, cycles)
		return mg.residual0 / mg.residualN
	}
	r1, r3 := red(1), red(3)
	if r3 <= r1 {
		t.Errorf("3 cycles (%.1fx) not better than 1 (%.1fx)", r3, r1)
	}
}

func TestMGHierarchyDepth(t *testing.T) {
	mg, _, _ := runMG(t, machine.Ideal, 2, 255, 1)
	// 255 -> 127 -> 63 -> 31 -> 15 -> 7: six levels.
	if mg.levels != 6 {
		t.Errorf("levels = %d, want 6", mg.levels)
	}
	if len(mg.u[mg.levels-1]) != 7 {
		t.Errorf("coarsest grid = %d points", len(mg.u[mg.levels-1]))
	}
}

func TestMGPhasesRecorded(t *testing.T) {
	_, _, res := runMG(t, machine.Target, 4, 255, 2)
	for _, want := range []string{"mg-smooth", "mg-restrict", "mg-prolongate", "mg-coarse"} {
		if res.Phases.Get(want) == nil {
			t.Errorf("phase %q missing (have %v)", want, res.Phases.Names())
		}
	}
	// The smoother dominates the work.
	smooth := res.Phases.Get("mg-smooth")
	coarse := res.Phases.Get("mg-coarse")
	if smooth.Time[stats.Compute] <= coarse.Time[stats.Compute] {
		t.Error("smoothing compute not dominant")
	}
}

func TestMGSerialBottomShowsInSync(t *testing.T) {
	// While processor 0 solves the coarsest grid the others wait: the
	// coarse phase must carry sync time for p > 1.
	_, _, res := runMG(t, machine.CLogP, 8, 255, 2)
	coarse := res.Phases.Get("mg-coarse")
	if coarse == nil || coarse.Time[stats.Sync] == 0 {
		t.Error("no sync time in the serial coarse phase")
	}
}

func TestMGCommunicatesAtEveryScale(t *testing.T) {
	_, run, _ := runMG(t, machine.CLogP, 8, 511, 1)
	if run.NetAccesses() == 0 {
		t.Error("no network accesses")
	}
	if run.Count(func(q *stats.Proc) uint64 { return q.BarrierOps }) == 0 {
		t.Error("no barrier episodes")
	}
}

func TestMGSolutionIsSmooth(t *testing.T) {
	mg, _, _ := runMG(t, machine.Ideal, 4, 255, 6)
	// After six V-cycles the solution of -u'' = f with smooth f must
	// itself be smooth: bounded second differences.
	u := mg.u[0]
	h2 := mg.h2[0]
	for i := 1; i < len(u)-1; i++ {
		d2 := (2*u[i] - u[i-1] - u[i+1]) / h2
		if math.Abs(d2) > 10 {
			t.Fatalf("second difference %g at %d — not a Poisson solution", d2, i)
		}
	}
}
