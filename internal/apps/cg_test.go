package apps

import (
	"testing"

	"spasm/internal/app"
	"spasm/internal/machine"
	"spasm/internal/sparse"
	"spasm/internal/stats"
)

func runCG(t *testing.T, kind machine.Kind, p, n, iters int) (*CG, *stats.Run) {
	t.Helper()
	cg := &CG{N: n, Extra: 3, Iters: iters, Seed: 1}
	res, err := app.Run(cg, machine.Config{Kind: kind, Topology: "full", P: p})
	if err != nil {
		t.Fatal(err)
	}
	return cg, res.Stats
}

func TestCGConvergesOnEveryMachine(t *testing.T) {
	for _, kind := range machine.Kinds() {
		runCG(t, kind, 4, 64, 4)
	}
}

func TestCGResidualShrinksWithIterations(t *testing.T) {
	res := func(iters int) float64 {
		cg, _ := runCG(t, machine.Ideal, 4, 96, iters)
		return sparse.Residual(cg.a, cg.x, cg.b)
	}
	r2, r6 := res(2), res(6)
	if r6 >= r2 {
		t.Errorf("residual after 6 iters (%g) not below 2 iters (%g)", r6, r2)
	}
}

func TestCGSolutionApproachesOnes(t *testing.T) {
	// b was built as A*ones, so x converges toward the all-ones vector.
	cg, _ := runCG(t, machine.Ideal, 2, 64, 12)
	for i, v := range cg.x {
		if v < 0.8 || v > 1.2 {
			t.Fatalf("x[%d] = %g after 12 iterations", i, v)
		}
	}
}

func TestCGIrregularReadsCommunicate(t *testing.T) {
	// The mat-vec's p[col] reads follow the sparsity pattern; with
	// random off-diagonals some must be remote.
	_, run := runCG(t, machine.CLogP, 4, 128, 2)
	if run.NetAccesses() == 0 {
		t.Error("CG produced no network accesses")
	}
}

func TestCGReductionsSerializeOnLock(t *testing.T) {
	_, run := runCG(t, machine.Target, 8, 128, 2)
	ops := run.Count(func(q *stats.Proc) uint64 { return q.LockOps })
	// Per iteration per processor: two lock-guarded reductions plus
	// three barrier arrivals (the centralized barrier's counter lock).
	if want := uint64(8 * 2 * (2 + 3)); ops != want {
		t.Errorf("lock ops = %d, want %d", ops, want)
	}
}

func TestCGDeterministicAcrossMachinesNumerically(t *testing.T) {
	// The numerical result depends on the order of lock-guarded float
	// accumulation, which differs between machines — but each machine
	// must be self-consistent and all must converge to the same
	// solution within tolerance.
	a, _ := runCG(t, machine.Target, 4, 96, 6)
	b, _ := runCG(t, machine.LogP, 4, 96, 6)
	for i := range a.x {
		d := a.x[i] - b.x[i]
		if d < -1e-6 || d > 1e-6 {
			t.Fatalf("x[%d] differs across machines: %g vs %g", i, a.x[i], b.x[i])
		}
	}
}

func TestCGBarrierCountMatchesStructure(t *testing.T) {
	_, run := runCG(t, machine.Ideal, 4, 64, 3)
	ops := run.Count(func(q *stats.Proc) uint64 { return q.BarrierOps })
	if want := uint64(4 * 3 * 3); ops != want { // 3 barriers x 3 iters x 4 procs
		t.Errorf("barrier ops = %d, want %d", ops, want)
	}
}
