package machine

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"spasm/internal/coherence"
	"spasm/internal/logp"
	"spasm/internal/mem"
	"spasm/internal/sim"
	"spasm/internal/stats"
)

func newSpace(p int) (*mem.Space, *mem.Array) {
	s := mem.NewSpace(p, 32)
	a := s.Alloc("x", p*64, 8, mem.Blocked)
	return s, a
}

func build(t *testing.T, cfg Config, s *mem.Space) Machine {
	t.Helper()
	m, err := New(cfg, s)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// driveOne runs fn inside a single simulated process.
func driveOne(t *testing.T, p int, fn func(*sim.Proc, *stats.Run)) *stats.Run {
	t.Helper()
	e := sim.NewEngine()
	run := stats.NewRun(p)
	e.Spawn("drv", func(pr *sim.Proc) { fn(pr, run) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	return run
}

func TestKindParsingAndNames(t *testing.T) {
	for _, k := range Kinds() {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Errorf("ParseKind(%q) = %v, %v", k.String(), got, err)
		}
	}
	if _, err := ParseKind("bogus"); err == nil {
		t.Error("ParseKind(bogus) succeeded")
	}
	if Kind(42).String() == "" {
		t.Error("unknown kind name empty")
	}
}

func TestIdealMachineUnitCost(t *testing.T) {
	s, a := newSpace(4)
	m := build(t, Config{Kind: Ideal}, s)
	run := driveOne(t, 4, func(p *sim.Proc, r *stats.Run) {
		for i := 0; i < 10; i++ {
			m.Read(p, &r.Procs[0], 0, a.At(i))
			m.Write(p, &r.Procs[0], 0, a.At(i))
		}
		if p.Now() != 20*sim.Cycles(1) {
			t.Errorf("ideal time = %v, want 20 cycles", p.Now())
		}
	})
	st := &run.Procs[0]
	if st.Messages != 0 || st.Time[stats.Latency] != 0 || st.Time[stats.Contention] != 0 {
		t.Error("ideal machine produced network overheads")
	}
	if st.Reads != 10 || st.Writes != 10 {
		t.Errorf("reads=%d writes=%d", st.Reads, st.Writes)
	}
}

func TestLogPLocalVsRemote(t *testing.T) {
	s, a := newSpace(4)
	m := build(t, Config{Kind: LogP, Topology: "full"}, s)
	run := driveOne(t, 4, func(p *sim.Proc, r *stats.Run) {
		lo0, _ := a.OwnerRange(0)
		lo2, _ := a.OwnerRange(2)
		m.Read(p, &r.Procs[0], 0, a.At(lo0)) // local
		if r.Procs[0].Messages != 0 {
			t.Error("local reference used the network")
		}
		m.Read(p, &r.Procs[0], 0, a.At(lo2)) // remote
	})
	st := &run.Procs[0]
	if st.Messages != 2 || st.NetAccesses != 1 {
		t.Errorf("messages=%d netaccesses=%d", st.Messages, st.NetAccesses)
	}
	if st.Time[stats.Latency] != 2*logp.DefaultL {
		t.Errorf("latency = %v, want 2L", st.Time[stats.Latency])
	}
}

func TestLogPEveryRemoteReferenceCrossesNetwork(t *testing.T) {
	// No cache: re-reading the same remote word pays the network every
	// time — the heart of the paper's locality argument.
	s, a := newSpace(4)
	m := build(t, Config{Kind: LogP, Topology: "full"}, s)
	run := driveOne(t, 4, func(p *sim.Proc, r *stats.Run) {
		lo2, _ := a.OwnerRange(2)
		for i := 0; i < 7; i++ {
			m.Read(p, &r.Procs[0], 0, a.At(lo2))
		}
	})
	if run.Procs[0].NetAccesses != 7 {
		t.Errorf("net accesses = %d, want 7", run.Procs[0].NetAccesses)
	}
}

func TestCLogPCachesRemoteData(t *testing.T) {
	s, a := newSpace(4)
	m := build(t, Config{Kind: CLogP, Topology: "full"}, s)
	run := driveOne(t, 4, func(p *sim.Proc, r *stats.Run) {
		lo2, _ := a.OwnerRange(2)
		for i := 0; i < 7; i++ {
			m.Read(p, &r.Procs[0], 0, a.At(lo2)) // 1 miss, then hits
		}
	})
	st := &run.Procs[0]
	if st.NetAccesses != 1 {
		t.Errorf("net accesses = %d, want 1", st.NetAccesses)
	}
	if st.Hits != 6 || st.Misses != 1 {
		t.Errorf("hits=%d misses=%d", st.Hits, st.Misses)
	}
}

func TestSpatialLocalityFactorFour(t *testing.T) {
	// The paper's FFT observation: reading 4 consecutive 8-byte items
	// costs 4 network accesses on LogP but 1 block fetch on CLogP.
	s, a := newSpace(4)
	lp := build(t, Config{Kind: LogP, Topology: "full"}, s)
	cl := build(t, Config{Kind: CLogP, Topology: "full"}, s)
	lo2, _ := a.OwnerRange(2)
	count := func(m Machine) uint64 {
		run := driveOne(t, 4, func(p *sim.Proc, r *stats.Run) {
			for i := 0; i < 4; i++ {
				m.Read(p, &r.Procs[0], 0, a.At(lo2+i))
			}
		})
		return run.Procs[0].NetAccesses
	}
	if l, c := count(lp), count(cl); l != 4 || c != 1 {
		t.Errorf("net accesses logp=%d clogp=%d, want 4 and 1", l, c)
	}
}

func TestTargetUsesDetailedFabric(t *testing.T) {
	s, a := newSpace(4)
	m := build(t, Config{Kind: Target, Topology: "mesh"}, s)
	run := driveOne(t, 4, func(p *sim.Proc, r *stats.Run) {
		lo2, _ := a.OwnerRange(2)
		m.Read(p, &r.Procs[0], 0, a.At(lo2))
	})
	st := &run.Procs[0]
	if st.Messages != 2 {
		t.Errorf("messages = %d", st.Messages)
	}
	// Request (8 bytes) + data reply (32 bytes) at 33 units/byte.
	want := sim.Time(8+32) * sim.SerialByte
	if st.Time[stats.Latency] != want {
		t.Errorf("latency = %v, want %v", st.Time[stats.Latency], want)
	}
	tm := m.(*cachedMachine)
	if tm.Fabric() == nil || tm.Fabric().Messages != 2 {
		t.Error("fabric not used")
	}
	if err := tm.Engine().CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestGDerivedFromTopology(t *testing.T) {
	s, _ := newSpace(16)
	for topo, wantG := range map[string]sim.Time{
		"full": sim.Micros(0.2), // 3.2/16
		"cube": sim.Micros(1.6),
		"mesh": sim.Micros(3.2), // 0.8 * 4 columns
	} {
		m := build(t, Config{Kind: LogP, Topology: topo}, s)
		if g := m.(*logpMachine).Net().G; g != wantG {
			t.Errorf("g(%s) = %v, want %v", topo, g, wantG)
		}
	}
}

func TestExplicitLAndGOverride(t *testing.T) {
	s, _ := newSpace(4)
	m := build(t, Config{Kind: LogP, Topology: "full", L: 500, G: 700}, s)
	n := m.(*logpMachine).Net()
	if n.L != 500 || n.G != 700 {
		t.Errorf("L=%v G=%v", n.L, n.G)
	}
}

func TestConfigErrors(t *testing.T) {
	s, _ := newSpace(4)
	if _, err := New(Config{Kind: Target, Topology: "omega"}, s); err == nil {
		t.Error("bad topology accepted")
	}
	if _, err := New(Config{Kind: Kind(9)}, s); err == nil {
		t.Error("bad kind accepted")
	}
	if _, err := New(Config{Kind: Ideal, P: 8}, s); err == nil {
		t.Error("P mismatch accepted")
	}
}

func TestAdaptiveGPlumbing(t *testing.T) {
	s, a := newSpace(8)
	m := build(t, Config{Kind: LogP, Topology: "mesh", AdaptiveG: true}, s)
	net := m.(*logpMachine).Net()
	if net.Crosses == nil {
		t.Fatal("adaptive predicate not wired")
	}
	// Drive enough neighbour-local traffic to warm the history and
	// confirm the crossing counter stays low.
	run := driveOne(t, 8, func(pr *sim.Proc, r *stats.Run) {
		lo, _ := a.OwnerRange(1)
		for i := 0; i < 100; i++ {
			m.Read(pr, &r.Procs[0], 0, a.At(lo)) // nodes 0->1: same half
		}
	})
	_ = run
	if net.Crossing != 0 {
		t.Errorf("neighbour traffic counted as crossing: %d", net.Crossing)
	}
	if net.Messages == 0 {
		t.Error("no messages recorded")
	}
}

func TestLinkByteTimePlumbing(t *testing.T) {
	s, a := newSpace(4)
	fast := build(t, Config{Kind: Target, Topology: "full", LinkByteTime: 8}, s)
	lo2, _ := a.OwnerRange(2)
	run := driveOne(t, 4, func(pr *sim.Proc, r *stats.Run) {
		fast.Read(pr, &r.Procs[0], 0, a.At(lo2))
	})
	// Request (8B) + reply (32B) at 8 units/byte.
	if want := sim.Time(40 * 8); run.Procs[0].Time[stats.Latency] != want {
		t.Errorf("latency = %v, want %v", run.Procs[0].Time[stats.Latency], want)
	}
	// And the LogP default L scales with it: 32 bytes x 8 units.
	s2, _ := newSpace(4)
	lp := build(t, Config{Kind: LogP, Topology: "full", LinkByteTime: 8}, s2)
	if got := lp.(*logpMachine).Net().L; got != 256 {
		t.Errorf("scaled L = %v, want 256", got)
	}
}

func TestProtocolPlumbing(t *testing.T) {
	s, _ := newSpace(4)
	for _, proto := range coherence.Protocols() {
		m := build(t, Config{Kind: Target, Topology: "full", Protocol: proto}, s2space(t))
		if got := m.(Coherent).Engine().Protocol; got != proto {
			t.Errorf("engine protocol = %v, want %v", got, proto)
		}
	}
	_ = s
}

func s2space(t *testing.T) *mem.Space {
	t.Helper()
	s, _ := newSpace(4)
	return s
}

// TestTargetVsCLogPSameCacheBehavior is the machine-level version of the
// paper's premise: identical reference streams produce identical
// hit/miss counts on Target and CLogP.
func TestTargetVsCLogPSameCacheBehavior(t *testing.T) {
	f := func(seed int64) bool {
		const p = 4
		sigOf := func(kind Kind) string {
			s, a := newSpace(p)
			m := build(t, Config{Kind: kind, Topology: "cube"}, s)
			rng := rand.New(rand.NewSource(seed))
			run := driveOne(t, p, func(pr *sim.Proc, r *stats.Run) {
				for i := 0; i < 400; i++ {
					n := rng.Intn(p)
					idx := rng.Intn(a.N)
					if rng.Intn(3) == 0 {
						m.Write(pr, &r.Procs[n], n, a.At(idx))
					} else {
						m.Read(pr, &r.Procs[n], n, a.At(idx))
					}
				}
			})
			var sig string
			for n := 0; n < p; n++ {
				sig += fmt.Sprintf("%d/%d ", run.Procs[n].Hits, run.Procs[n].Misses)
			}
			return sig
		}
		return sigOf(Target) == sigOf(CLogP)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

// Property: on every machine, overhead buckets are non-negative and a
// run's reads+writes match what was issued.
func TestAccountingSanityProperty(t *testing.T) {
	f := func(seed int64) bool {
		const p = 4
		rng := rand.New(rand.NewSource(seed))
		kind := Kinds()[rng.Intn(len(Kinds()))]
		s, a := newSpace(p)
		m := build(t, Config{Kind: kind, Topology: "mesh"}, s)
		var reads, writes uint64
		run := driveOne(t, p, func(pr *sim.Proc, r *stats.Run) {
			for i := 0; i < 200; i++ {
				n := rng.Intn(p)
				idx := rng.Intn(a.N)
				if rng.Intn(2) == 0 {
					m.Write(pr, &r.Procs[n], n, a.At(idx))
					writes++
				} else {
					m.Read(pr, &r.Procs[n], n, a.At(idx))
					reads++
				}
			}
		})
		gotR := run.Count(func(q *stats.Proc) uint64 { return q.Reads })
		gotW := run.Count(func(q *stats.Proc) uint64 { return q.Writes })
		return gotR == reads && gotW == writes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
