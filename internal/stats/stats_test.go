package stats

import (
	"strings"
	"testing"
	"testing/quick"

	"spasm/internal/sim"
)

func TestBucketNames(t *testing.T) {
	want := []string{"compute", "memory", "latency", "contention", "sync"}
	for b := Bucket(0); b < NumBuckets; b++ {
		if b.String() != want[b] {
			t.Errorf("bucket %d name %q, want %q", b, b.String(), want[b])
		}
	}
	if !strings.Contains(Bucket(99).String(), "99") {
		t.Error("out-of-range bucket name")
	}
}

func TestProcAddAndBusy(t *testing.T) {
	var p Proc
	p.Add(Compute, 100)
	p.Add(Latency, 50)
	p.Add(Latency, 25)
	if p.Time[Latency] != 75 {
		t.Errorf("latency = %v", p.Time[Latency])
	}
	if p.Busy() != 175 {
		t.Errorf("busy = %v", p.Busy())
	}
}

func TestNegativeChargePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on negative charge")
		}
	}()
	var p Proc
	p.Add(Sync, -1)
}

func TestRunAggregation(t *testing.T) {
	r := NewRun(4)
	for i := range r.Procs {
		r.Procs[i].Add(Contention, sim.Time(10*(i+1)))
		r.Procs[i].Messages = uint64(i)
		r.Finish(i, sim.Time(100*(i+1)))
	}
	if r.P() != 4 {
		t.Errorf("P = %d", r.P())
	}
	if r.Sum(Contention) != 100 {
		t.Errorf("sum = %v", r.Sum(Contention))
	}
	if r.Mean(Contention) != 25 {
		t.Errorf("mean = %v", r.Mean(Contention))
	}
	if r.Max(Contention) != 40 {
		t.Errorf("max = %v", r.Max(Contention))
	}
	if r.Total != 400 {
		t.Errorf("total = %v", r.Total)
	}
	if r.Messages() != 6 {
		t.Errorf("messages = %d", r.Messages())
	}
	if r.String() == "" {
		t.Error("empty String")
	}
}

func TestProcIDsAssigned(t *testing.T) {
	r := NewRun(3)
	for i, p := range r.Procs {
		if p.ID != i {
			t.Errorf("proc %d has ID %d", i, p.ID)
		}
	}
}

// Property: Sum == sum of per-proc values; Max >= Mean; Total == max Finish.
func TestAggregateProperty(t *testing.T) {
	f := func(vals []uint16) bool {
		if len(vals) == 0 {
			vals = []uint16{0}
		}
		if len(vals) > 64 {
			vals = vals[:64]
		}
		r := NewRun(len(vals))
		var sum sim.Time
		var max sim.Time
		for i, v := range vals {
			d := sim.Time(v)
			r.Procs[i].Add(Latency, d)
			r.Finish(i, d)
			sum += d
			if d > max {
				max = d
			}
		}
		return r.Sum(Latency) == sum && r.Max(Latency) == max &&
			r.Total == max && r.Mean(Latency) <= max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
