// Package probe is the simulator's time-resolved telemetry subsystem: a
// Profiler attaches to one run and samples, per fixed simulated-time
// epoch, where execution time went and where the network hurt —
//
//   - per-processor execution-time bucket deltas (compute / memory /
//     latency / contention / sync), so the end-of-run aggregates of
//     internal/stats can be seen *unfolding* over simulated time;
//   - per-processor event-counter deltas (references, cache misses,
//     messages, invalidations, writebacks — the coherence actions);
//   - per-link occupancy, traffic and waiting time on the target
//     machine's detailed fabric, the data that shows *which* links
//     saturate during a contention spike (on the flow tier, the same
//     samples are recorded against each flow's bottleneck resource);
//   - a log₂-bucketed histogram of end-to-end message delays (latency
//     plus waiting), per epoch, on every machine with a network.
//
// Sampling is driven by the sim.Engine.Tick hook: whenever the engine
// clock crosses an epoch boundary the profiler snapshots the cumulative
// statistics and spreads each processor's delta over the local-clock
// window it covers (processors run ahead of the engine on local clocks,
// so a compute burst is attributed to the epochs where it actually ran,
// not the epoch where the engine observed it).  A final snapshot at run
// completion closes the tail, so the per-epoch deltas of every bucket
// and counter sum *exactly* to the run's aggregate statistics.  The
// profile is a
// pure function of the run's spec: no wall clock, no map-iteration
// order, no host dependence anywhere — identical specs produce
// byte-identical encoded profiles (see Encode).
//
// When a run outgrows the configured epoch budget the profiler halves
// its resolution in place (adjacent epochs merge pairwise and the epoch
// length doubles), so memory stays bounded while short phase behaviour
// is preserved for short runs.
package probe

import (
	"fmt"
	"math/bits"
	"sort"

	"spasm/internal/app"
	"spasm/internal/flow"
	"spasm/internal/logp"
	"spasm/internal/machine"
	"spasm/internal/network"
	"spasm/internal/sim"
	"spasm/internal/stats"
)

// Defaults for Config.
const (
	// DefaultEpoch is the initial epoch length: 10 simulated
	// microseconds, fine enough to resolve the barrier episodes of the
	// tiny workloads; longer runs coarsen automatically.
	DefaultEpoch = 10 * sim.UnitsPerMicro
	// DefaultMaxEpochs bounds a profile's length; crossing it merges
	// adjacent epochs and doubles the epoch length.
	DefaultMaxEpochs = 192
	// DefaultMaxLinks bounds the distinct per-link samples held per
	// epoch.  Small machines never reach it (the paper's topologies have
	// at most 4096 directed links at p=64), but at 1024 processors the
	// fully connected fabric has a million links, and an unbudgeted map
	// per epoch would dwarf the simulation itself.  Activity on links
	// beyond the budget folds into one overflow aggregate per epoch,
	// recorded under link id NumLinks (one past the real id space).
	DefaultMaxLinks = 4096
	// HistBuckets is the number of log₂ message-delay buckets: bucket i
	// counts delays d (in sim.Time units) with 2^i <= d < 2^(i+1)
	// (bucket 0 also collects d < 1); the last bucket is unbounded.
	HistBuckets = 24
)

// Config parameterizes a Profiler.  The zero value uses the defaults.
type Config struct {
	// EpochLen is the initial epoch length (0 = DefaultEpoch).
	EpochLen sim.Time
	// MaxEpochs caps the number of epochs held; on overflow the
	// resolution halves (0 = DefaultMaxEpochs; minimum 2).
	MaxEpochs int
	// MaxLinks caps the distinct per-link samples held per epoch; link
	// activity beyond it folds into an overflow aggregate under link id
	// NumLinks (0 = DefaultMaxLinks; minimum 1).
	MaxLinks int
	// OnEpoch, when set, is called for each epoch as it closes during
	// the run (and for the remaining tail at Finish), enabling live
	// streaming of the profile while the simulation executes.  The hook
	// runs synchronously on the simulation goroutine: it must be cheap,
	// must not block, and must not re-enter the profiler.  Emitted
	// events are provisional — see EpochEvent.  Setting OnEpoch does
	// not change the finished Profile in any way.
	OnEpoch func(EpochEvent)
}

// ProcSample is one processor's activity within one epoch: the deltas of
// its time buckets and event counters.
type ProcSample struct {
	Buckets [stats.NumBuckets]sim.Time

	Reads      uint64
	Writes     uint64
	Hits       uint64
	Misses     uint64
	Messages   uint64
	Invals     uint64
	Writebacks uint64
}

func (a *ProcSample) add(b *ProcSample) {
	for i := range a.Buckets {
		a.Buckets[i] += b.Buckets[i]
	}
	a.Reads += b.Reads
	a.Writes += b.Writes
	a.Hits += b.Hits
	a.Misses += b.Misses
	a.Messages += b.Messages
	a.Invals += b.Invals
	a.Writebacks += b.Writebacks
}

func (a *ProcSample) sub(b *ProcSample) {
	for i := range a.Buckets {
		a.Buckets[i] -= b.Buckets[i]
	}
	a.Reads -= b.Reads
	a.Writes -= b.Writes
	a.Hits -= b.Hits
	a.Misses -= b.Misses
	a.Messages -= b.Messages
	a.Invals -= b.Invals
	a.Writebacks -= b.Writebacks
}

// scale returns the sample multiplied by frac (0 <= frac < 1), rounding
// every field down — the caller gives the remainder to the last chunk.
func (a *ProcSample) scale(frac float64) ProcSample {
	var c ProcSample
	for i := range a.Buckets {
		c.Buckets[i] = sim.Time(float64(a.Buckets[i]) * frac)
	}
	c.Reads = uint64(float64(a.Reads) * frac)
	c.Writes = uint64(float64(a.Writes) * frac)
	c.Hits = uint64(float64(a.Hits) * frac)
	c.Misses = uint64(float64(a.Misses) * frac)
	c.Messages = uint64(float64(a.Messages) * frac)
	c.Invals = uint64(float64(a.Invals) * frac)
	c.Writebacks = uint64(float64(a.Writebacks) * frac)
	return c
}

// LinkSample is one directed link's activity within one epoch (target
// machine only).
type LinkSample struct {
	// Link is the directed link id in the topology's id space.
	Link int
	// Busy is the time the link spent occupied by circuits within the
	// epoch; Busy/EpochLen is the link's utilization.
	Busy sim.Time
	// Wait is the total time messages routed over this link spent
	// waiting for their circuit — a queueing-pressure indicator
	// (Wait/EpochLen is the mean number of messages queued behind the
	// link, by Little's law).
	Wait sim.Time
	// Messages and Bytes count the transmissions that *started* in
	// this epoch and traversed the link.
	Messages uint64
	Bytes    uint64
}

// Epoch is one sampling interval of a Profile.
type Epoch struct {
	// Procs has one sample per processor.
	Procs []ProcSample
	// Links holds the samples of links with any activity this epoch,
	// sorted by link id.  Empty on machines without a detailed fabric.
	Links []LinkSample
	// Hist is the log₂ histogram of end-to-end message delays
	// (contention-free latency plus waiting) of messages departing in
	// this epoch.
	Hist [HistBuckets]uint64
}

// Profile is the finished, immutable output of a Profiler.
type Profile struct {
	// App, Machine and Topology identify the profiled run.
	App      string
	Machine  string
	Topology string
	// P is the number of processors; NumLinks the size of the detailed
	// fabric's directed-link id space (0 without one).
	P        int
	NumLinks int
	// EpochLen is the final epoch length; epoch i covers simulated
	// time [i*EpochLen, (i+1)*EpochLen).
	EpochLen sim.Time
	// Total is the run's simulated execution time.
	Total sim.Time
	// Epochs are the samples, covering [0, Total].
	Epochs []Epoch
}

// EpochStart returns the simulated time at which epoch i begins.
func (p *Profile) EpochStart(i int) sim.Time { return sim.Time(i) * p.EpochLen }

// Sum returns bucket b summed over all processors and epochs; it equals
// the aggregate stats.Run.Sum of the same run by construction.
func (p *Profile) Sum(b stats.Bucket) sim.Time {
	var t sim.Time
	for i := range p.Epochs {
		for j := range p.Epochs[i].Procs {
			t += p.Epochs[i].Procs[j].Buckets[b]
		}
	}
	return t
}

// EpochSum returns bucket b summed over the processors of epoch i.
func (p *Profile) EpochSum(i int, b stats.Bucket) sim.Time {
	var t sim.Time
	for j := range p.Epochs[i].Procs {
		t += p.Epochs[i].Procs[j].Buckets[b]
	}
	return t
}

// Peak returns the epoch with the largest summed value of bucket b, and
// that value.  With no epochs it returns (0, 0).
func (p *Profile) Peak(b stats.Bucket) (epoch int, total sim.Time) {
	for i := range p.Epochs {
		if v := p.EpochSum(i, b); v > total {
			epoch, total = i, v
		}
	}
	return epoch, total
}

// Utilization returns the mean utilization of the detailed fabric's
// links during epoch i, and the single busiest link's utilization.
// Both are 0 on machines without a detailed network.
func (p *Profile) Utilization(i int) (mean, max float64) {
	if p.NumLinks == 0 {
		return 0, 0
	}
	var busy, peak sim.Time
	for _, l := range p.Epochs[i].Links {
		busy += l.Busy
		if l.Busy > peak {
			peak = l.Busy
		}
	}
	el := float64(p.EpochLen)
	return float64(busy) / (el * float64(p.NumLinks)), float64(peak) / el
}

// Messages returns the total messages recorded in epoch i's histogram.
func (e *Epoch) Messages() uint64 {
	var n uint64
	for _, c := range e.Hist {
		n += c
	}
	return n
}

// DelayQuantile returns the approximate q-quantile (0 < q <= 1) of the
// epoch's message-delay histogram, as the geometric midpoint of the
// bucket the quantile falls in.  It returns 0 when the epoch carried no
// messages.
func (e *Epoch) DelayQuantile(q float64) sim.Time {
	total := e.Messages()
	if total == 0 {
		return 0
	}
	rank := uint64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var seen uint64
	for i, c := range e.Hist {
		seen += c
		if seen > rank {
			if i == 0 {
				return 1
			}
			return sim.Time(1)<<uint(i) + sim.Time(1)<<uint(i-1) // 1.5 * 2^i
		}
	}
	return 0
}

// histBucket maps a delay to its log₂ bucket.
func histBucket(d sim.Time) int {
	if d <= 0 {
		return 0
	}
	b := bits.Len64(uint64(d)) - 1
	if b >= HistBuckets {
		b = HistBuckets - 1
	}
	return b
}

// procSnap is the cumulative per-processor state at the last snapshot,
// plus the processor's local clock then — the spreading window's start.
type procSnap struct {
	buckets                                                   [stats.NumBuckets]sim.Time
	reads, writes, hits, misses, messages, invals, writebacks uint64
	local                                                     sim.Time
}

// epochAcc is one epoch under accumulation.
type epochAcc struct {
	procs []ProcSample
	links map[int]*LinkSample // lazy; nil until a link is touched
	hist  [HistBuckets]uint64
}

// link returns the accumulator for link id, enforcing the per-epoch
// budget: once the epoch holds budget distinct ids, activity on any
// further id folds into one overflow aggregate recorded under ovfID
// (the id one past the real link space).  Ids already held — including
// the overflow itself — keep accumulating individually, so which links
// get their own sample is a deterministic function of touch order.
func (e *epochAcc) link(id, budget, ovfID int) *LinkSample {
	if e.links == nil {
		e.links = make(map[int]*LinkSample)
	}
	l, ok := e.links[id]
	if !ok {
		if len(e.links) >= budget && id != ovfID {
			return e.link(ovfID, budget+1, ovfID)
		}
		l = &LinkSample{Link: id}
		e.links[id] = l
	}
	return l
}

// merge folds o into e (pairwise epoch merge during a rescale).  Link
// ids are folded in ascending order: when the budget binds mid-merge,
// which ids keep individual samples must not depend on map iteration
// order.
func (e *epochAcc) merge(o *epochAcc, budget, ovfID int) {
	for i := range e.procs {
		e.procs[i].add(&o.procs[i])
	}
	if len(o.links) > 0 {
		ids := make([]int, 0, len(o.links))
		for id := range o.links {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		for _, id := range ids {
			ol := o.links[id]
			l := e.link(id, budget, ovfID)
			l.Busy += ol.Busy
			l.Wait += ol.Wait
			l.Messages += ol.Messages
			l.Bytes += ol.Bytes
		}
	}
	for i := range e.hist {
		e.hist[i] += o.hist[i]
	}
}

// Profiler samples one run.  Create with New, pass to
// app.RunInstrumented (or use the spasm.RunProfiled façade), then read
// Profile.  A Profiler must not be reused across runs without calling
// Reset between them.
type Profiler struct {
	cfg Config

	run      *stats.Run
	eng      *sim.Engine
	p        int
	numLinks int
	kind     string
	topo     string

	epochLen  sim.Time
	maxEpochs int
	maxLinks  int
	epochs    []epochAcc
	closed    int // fully closed epochs; epoch `closed` is open
	emitted   int // epochs already fired through cfg.OnEpoch
	snap      []procSnap

	profile *Profile
}

// New returns a Profiler with the given configuration.
func New(cfg Config) *Profiler {
	if cfg.EpochLen <= 0 {
		cfg.EpochLen = DefaultEpoch
	}
	if cfg.MaxEpochs < 2 {
		cfg.MaxEpochs = DefaultMaxEpochs
	}
	if cfg.MaxLinks < 1 {
		cfg.MaxLinks = DefaultMaxLinks
	}
	return &Profiler{cfg: cfg, epochLen: cfg.EpochLen,
		maxEpochs: cfg.MaxEpochs, maxLinks: cfg.MaxLinks}
}

// linkAt returns epoch e's accumulator for link id under the profiler's
// budget; the overflow aggregate sits at id NumLinks (the id space on
// the machine being profiled — the fabric's links or the flow tier's
// resource space).
func (pr *Profiler) linkAt(e *epochAcc, id int) *LinkSample {
	return e.link(id, pr.maxLinks, pr.numLinks)
}

// Reset returns the profiler to its post-New state so it can sample
// another run, keeping the epoch accumulator's and the snapshot table's
// backing arrays.  Retained epoch slots are cleared rather than reused:
// the previously emitted Profile aliases their per-proc sample slices
// (Finish hands them over without copying), so a reused slot would
// corrupt it — epochAt re-populates cleared slots exactly as it fills
// fresh ones, which keeps reset profilers byte-identical to fresh ones.
func (pr *Profiler) Reset() {
	pr.run = nil
	pr.eng = nil
	pr.p = 0
	pr.numLinks = 0
	pr.kind = ""
	pr.topo = ""
	pr.epochLen = pr.cfg.EpochLen
	pr.maxEpochs = pr.cfg.MaxEpochs
	pr.maxLinks = pr.cfg.MaxLinks
	for i := range pr.epochs {
		pr.epochs[i] = epochAcc{}
	}
	pr.epochs = pr.epochs[:0]
	pr.closed = 0
	pr.emitted = 0
	pr.snap = pr.snap[:0]
	pr.profile = nil
}

// Attach implements app.Instrument: it hooks the engine clock and, when
// the machine has one, the detailed fabric or the abstract network.
func (pr *Profiler) Attach(cfg machine.Config, eng *sim.Engine, run *stats.Run, m machine.Machine) {
	pr.run = run
	pr.eng = eng
	pr.p = run.P()
	pr.kind = m.Kind().String()
	pr.topo = cfg.Topology
	if cap(pr.snap) >= pr.p {
		pr.snap = pr.snap[:pr.p]
		for i := range pr.snap {
			pr.snap[i] = procSnap{}
		}
	} else {
		pr.snap = make([]procSnap, pr.p)
	}

	prev := eng.Tick
	eng.Tick = func(now sim.Time) {
		if prev != nil {
			prev(now)
		}
		pr.tick(now)
	}

	if nm, ok := m.(machine.Networked); ok && nm.Fabric() != nil {
		fab := nm.Fabric()
		pr.numLinks = fab.Topology().NumLinks()
		fab.Observer = pr.fabricXmit
	} else if fm, ok := m.(machine.Flowed); ok && fm.FlowNet() != nil {
		fn := fm.FlowNet()
		pr.numLinks = fn.LinkSpace()
		fn.Observer = pr.flowXmit
	} else if am, ok := m.(machine.Abstracted); ok && am.Net() != nil {
		am.Net().Observer = pr.netXmit
	}
}

// boundary is the simulated time at which the open epoch ends.
func (pr *Profiler) boundary() sim.Time {
	return sim.Time(pr.closed+1) * pr.epochLen
}

// tick snapshots whenever the engine clock crosses an epoch boundary.
func (pr *Profiler) tick(now sim.Time) {
	if now < pr.boundary() {
		return
	}
	pr.snapAll()
	// snapAll may have rescaled; recompute the closed count against the
	// current epoch length.
	pr.closed = int(now / pr.epochLen)
	pr.emitClosed(pr.closed, false)
}

// snapAll distributes every processor's statistics deltas since its
// last snapshot over the epochs its local clock traversed.  Processors
// run ahead of the engine clock on local clocks (sim.Proc.Defer), so a
// delta observed at one engine-clock advance may cover a long stretch
// of earlier local time; spreading it uniformly over that window puts a
// compute burst (or a long synchronization stall) in the epochs where
// the time was actually spent rather than the epoch where the engine
// noticed it.  The last chunk of each window takes the integer
// remainder, so the per-epoch samples still sum exactly to the
// aggregate statistics.
func (pr *Profiler) snapAll() {
	var workers []*sim.Proc
	if pr.eng != nil {
		workers = pr.eng.Procs()
	}
	for i := 0; i < pr.p; i++ {
		st := &pr.run.Procs[i]
		s := &pr.snap[i]
		cur := s.local
		if i < len(workers) {
			if n := workers[i].Horizon(); n > cur {
				cur = n
			}
		}
		// A terminated processor's engine-relative clock keeps moving
		// with the engine; its own time stopped at Finish.
		if st.Finish > 0 && cur > st.Finish {
			cur = st.Finish
		}
		var d ProcSample
		for b := stats.Bucket(0); b < stats.NumBuckets; b++ {
			d.Buckets[b] = st.Time[b] - s.buckets[b]
			s.buckets[b] = st.Time[b]
		}
		d.Reads = st.Reads - s.reads
		d.Writes = st.Writes - s.writes
		d.Hits = st.Hits - s.hits
		d.Misses = st.Misses - s.misses
		d.Messages = st.Messages - s.messages
		d.Invals = st.Invals - s.invals
		d.Writebacks = st.Writebacks - s.writebacks
		s.reads, s.writes, s.hits = st.Reads, st.Writes, st.Hits
		s.misses, s.messages = st.Misses, st.Messages
		s.invals, s.writebacks = st.Invals, st.Writebacks
		pr.spread(i, &d, s.local, cur)
		s.local = cur
	}
}

// spread adds processor i's delta sample to the epochs covered by its
// local-clock window [a, b), proportionally to overlap.
func (pr *Profiler) spread(i int, d *ProcSample, a, b sim.Time) {
	if *d == (ProcSample{}) {
		return
	}
	if b <= a {
		// No local progress since the last snapshot: the charges are
		// instantaneous at a; attribute them to the epoch ending there.
		t := a
		if t > 0 {
			t--
		}
		pr.epochAt(t).procs[i].add(d)
		return
	}
	span := float64(b - a)
	rem := *d
	for t := a; t < b; {
		e := pr.epochAt(t)
		// Recompute the edge after epochAt, which may rescale.
		edge := (t/pr.epochLen + 1) * pr.epochLen
		if edge >= b {
			e.procs[i].add(&rem)
			return
		}
		c := d.scale(float64(edge-t) / span)
		e.procs[i].add(&c)
		rem.sub(&c)
		t = edge
	}
}

// epochAt returns the accumulator for the epoch containing time t,
// extending the profile and halving its resolution as needed.
func (pr *Profiler) epochAt(t sim.Time) *epochAcc {
	if t < 0 {
		t = 0
	}
	idx := int(t / pr.epochLen)
	for idx >= pr.maxEpochs {
		pr.rescale()
		idx = int(t / pr.epochLen)
	}
	for len(pr.epochs) <= idx {
		pr.epochs = append(pr.epochs, epochAcc{procs: make([]ProcSample, pr.p)})
	}
	return &pr.epochs[idx]
}

// rescale halves the profile's resolution: adjacent epochs merge
// pairwise and the epoch length doubles.
func (pr *Profiler) rescale() {
	n := (len(pr.epochs) + 1) / 2
	for i := 0; i < n; i++ {
		if i > 0 {
			pr.epochs[i] = pr.epochs[2*i]
		}
		if 2*i+1 < len(pr.epochs) {
			pr.epochs[i].merge(&pr.epochs[2*i+1], pr.maxLinks, pr.numLinks)
		}
	}
	pr.epochs = pr.epochs[:n]
	pr.epochLen *= 2
	pr.closed /= 2
	// Already-emitted epochs merged pairwise too; the merged epoch
	// holding any not-yet-emitted half counts as unemitted, so it fires
	// (again, at the doubled length) on the next boundary crossing.
	pr.emitted /= 2
}

// fabricXmit is the detailed fabric's observer: it attributes the
// message's delay to the departure epoch's histogram and spreads the
// circuit's occupancy over the epochs it spans, per link.
func (pr *Profiler) fabricXmit(now sim.Time, x network.Xmit, src, dst, bytes int, route []int) {
	dep := pr.epochAt(now)
	dep.hist[histBucket(x.End-now)]++
	for _, id := range route {
		// Message counters and waiting charge to the departure epoch.
		l := pr.linkAt(pr.epochAt(now), id)
		l.Messages++
		l.Bytes += uint64(bytes)
		l.Wait += x.Wait
		pr.addLinkSpan(id, x.Start, x.End)
	}
}

// addLinkSpan spreads a circuit's [start, end) occupancy of one link
// across the epochs the interval overlaps.
func (pr *Profiler) addLinkSpan(id int, start, end sim.Time) {
	for t := start; t < end; {
		e := pr.epochAt(t)
		// Recompute the epoch edge after epochAt, which may rescale.
		edge := (t/pr.epochLen + 1) * pr.epochLen
		if edge > end {
			edge = end
		}
		pr.linkAt(e, id).Busy += edge - t
		t = edge
	}
}

// flowXmit is the flow tier's observer: it attributes the flow's delay
// to the admission epoch's histogram and charges the flow's occupancy
// and waiting to its bottleneck resource.  The resource id space is the
// flow net's LinkSpace (directed links, then injection ports, then
// ejection ports), so per-link telemetry shows *which* resource the
// sharing happened on, through the unchanged encode format.
func (pr *Profiler) flowXmit(now sim.Time, x flow.Xmit, src, dst, bytes int) {
	pr.epochAt(now).hist[histBucket(x.End-now)]++
	l := pr.linkAt(pr.epochAt(now), x.Bottleneck)
	l.Messages++
	l.Bytes += uint64(bytes)
	l.Wait += x.Wait
	pr.addLinkSpan(x.Bottleneck, x.Start, x.End)
}

// netXmit is the abstract network's observer: delays only, no links.
func (pr *Profiler) netXmit(now sim.Time, x logp.Xmit, src, dst int) {
	pr.epochAt(now).hist[histBucket(x.Deliver-now)]++
}

// Finish implements app.Instrument: it closes the final partial epoch
// and freezes the profile.
func (pr *Profiler) Finish(res *app.Result) {
	// Take the final snapshot — any activity since the last boundary
	// crossing spreads over the closing local-clock windows — and make
	// sure the profile reaches the run's completion even if the tail
	// epochs carried no activity.
	pr.snapAll()
	last := pr.run.Total
	if last > 0 {
		last--
	}
	pr.epochAt(last)

	p := &Profile{
		App:      res.Program,
		Machine:  pr.kind,
		Topology: pr.topo,
		P:        pr.p,
		NumLinks: pr.numLinks,
		EpochLen: pr.epochLen,
		Total:    pr.run.Total,
	}
	for i := range pr.epochs {
		acc := &pr.epochs[i]
		ep := Epoch{Procs: acc.procs, Hist: acc.hist}
		if len(acc.links) > 0 {
			ids := make([]int, 0, len(acc.links))
			for id := range acc.links {
				ids = append(ids, id)
			}
			sort.Ints(ids)
			for _, id := range ids {
				ep.Links = append(ep.Links, *acc.links[id])
			}
		}
		p.Epochs = append(p.Epochs, ep)
	}
	// Drop trailing empty epochs created by in-flight transmissions
	// that never extended past the run's completion.
	for len(p.Epochs) > 0 && p.EpochStart(len(p.Epochs)-1) > p.Total {
		p.Epochs = p.Epochs[:len(p.Epochs)-1]
	}
	// Flush the unemitted tail (the final partial epoch, and any earlier
	// epochs the last boundary crossing had not reached).
	pr.emitClosed(len(p.Epochs), true)
	pr.profile = p
}

// Profile returns the finished profile; it panics if the run has not
// completed.
func (pr *Profiler) Profile() *Profile {
	if pr.profile == nil {
		panic("probe: Profile before the run finished")
	}
	return pr.profile
}

var _ app.Instrument = (*Profiler)(nil)

// String summarizes the profile in one line.
func (p *Profile) String() string {
	return fmt.Sprintf("%s on %s/%s p=%d: %d epochs of %v (total %v)",
		p.App, p.Machine, p.Topology, p.P, len(p.Epochs), p.EpochLen, p.Total)
}
