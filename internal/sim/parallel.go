package sim

// Conservative parallel execution mode.
//
// The sequential kernel dispatches events strictly in (at, seq) order and
// runs exactly one process at a time, so every read or write of shared
// simulation state (machine models, synchronization objects, the event
// heap itself) happens in that order.  The parallel mode keeps that order
// for the *shared* state while overlapping everything else: the span of
// host execution between one resumption of a process and its next
// blocking point — address computation, machine-model arithmetic, local
// statistics — runs concurrently on many goroutines, and only the global
// sections inside a span (anything that can observe or influence another
// process) serialize through an ordered commit gate.
//
// The gate grants commit rights to the globally oldest incomplete span,
// i.e. the span whose (at, seq) release key is the minimum over the
// barrier-free clock vector (par.Clocks) *and* not preceded by any event
// still in the heap.  Because spans are granted in exactly the sequential
// dispatch order, and because a granted span stays the minimum until it
// completes (its own schedules produce strictly larger keys, and any
// older heap event is force-released and retired first — see
// par.Policy.Release rule 1), every global section of a span is atomic
// with respect to other spans' sections.  A parallel run therefore
// produces bit-identical results to the sequential kernel: same event
// count, same timestamps, same statistics, same RunDocs.
//
// Windows: the release policy (par.Policy) throttles how far past the
// oldest incomplete span new spans are released — Workers bounds the
// concurrency, and Lookahead (the backend's minimum cross-domain
// interaction latency) bounds how far ahead in simulated time a released
// span may sit.  The lookahead is a performance knob, not a correctness
// condition: correctness comes from the gate alone.
//
// Degeneration: when the run is interrupted, a process panics, the event
// supply drains, or the program deadlocks, the window closes — once no
// span is incomplete the engine clears parallel mode and hands the run
// token to the sequential dispatch loop, which drains, unwinds, and
// terminates through the exact same abort machinery a sequential run
// uses.  That reuse is what makes mid-window Interrupts leak zero
// goroutines.

import (
	"fmt"

	"spasm/internal/par"
)

// parGate is the ordered commit gate of one parallel run.  Its mutex
// protects all engine state during parallel execution: the event heap,
// seq counter, clock vector, per-process release bookkeeping, and the
// simulated clock.  Global sections do not hold the mutex while running —
// they hold the *grant* (being the oldest incomplete span), which the
// mutex only hands over.
type parGate struct {
	clocks   *par.Clocks
	pol      par.Policy
	stopping bool // no further releases: drain toward sequential mode

	// Telemetry (reported via ParReport after the run).
	windows  uint64 // release batches that released at least one span
	releases uint64 // spans released
	sections uint64 // gate grants (spans that entered a global section)
	peak     int    // most spans incomplete at once
}

// mu lives on the Engine rather than the gate so the schedule path can
// lock it without loading e.par twice; it is only used while par != nil.

// ParReport describes the outcome of the last Run's parallel mode.
type ParReport struct {
	Requested int    // workers requested via SetParallel
	Parallel  bool   // whether the run executed in parallel mode at all
	Fallback  string // why it did not, or why it degenerated mid-flight
	Domains   int    // clock-vector width used
	Windows   uint64 // release batches
	Releases  uint64 // spans released
	Sections  uint64 // gate grants
	Peak      int    // most spans in flight at once
}

// SetParallel arms the conservative parallel mode for the next Run:
// workers bounds span concurrency, lookahead is the backend's minimum
// cross-domain interaction latency (see par.Policy), and domainOf maps a
// process ID to its clock-vector domain.  With workers <= 1 the engine
// runs sequentially.  Reset clears the setting.
//
// Parallel runs are bit-identical to sequential runs; Run falls back to
// the sequential kernel whenever a configuration is incompatible with
// windowed execution (see ParReport.Fallback).
func (e *Engine) SetParallel(workers int, lookahead Time, domainOf func(procID int) int) {
	e.pworkers = workers
	e.plook = lookahead
	e.pdomOf = domainOf
}

// ForceSequential makes the next Run use the sequential kernel even if
// SetParallel was called, recording reason in ParReport.Fallback.  The
// runner uses it when a run is instrumented in ways the windowed mode
// cannot reproduce (e.g. machine decorators that trace global order).
func (e *Engine) ForceSequential(reason string) { e.pforce = reason }

// parFallback reports why the next Run cannot execute in parallel mode,
// or "" if it can.  The checks mirror the sequential dispatch features
// that windowed execution does not reproduce.
func (e *Engine) parFallback() string {
	switch {
	case e.pforce != "":
		return e.pforce
	case e.pdomOf == nil:
		return "no-domain-plan"
	case e.plook <= 0:
		return "zero-lookahead"
	case e.Tick != nil:
		return "tick-hook"
	case e.MaxTime > 0:
		return "time-limit-watchdog"
	case len(e.procs) < 2:
		return "single-process"
	}
	return ""
}

// WillRunParallel reports whether the next Run would execute in parallel
// mode as currently configured.
func (e *Engine) WillRunParallel() bool {
	return e.pworkers > 1 && e.parFallback() == ""
}

// ParReport returns the parallel-mode outcome of the last Run.
func (e *Engine) ParReport() ParReport {
	return ParReport{
		Requested: e.pworkers,
		Parallel:  e.parRan,
		Fallback:  e.pfall,
		Domains:   e.parDoms,
		Windows:   e.parWin,
		Releases:  e.parRel,
		Sections:  e.parSec,
		Peak:      e.parPeak,
	}
}

// runParallel executes the run in windowed parallel mode.  It releases
// the initial window and then waits for the result; after that, all
// dispatching happens on the process goroutines themselves, exactly as in
// the sequential kernel — the last retiring span either releases the next
// window or drains the engine back to sequential mode, which publishes
// the result through the same done channel.
func (e *Engine) runParallel() error {
	d := 1
	for _, p := range e.procs {
		p.dom = e.pdomOf(p.ID)
		if p.dom < 0 {
			p.dom = 0
		}
		if p.dom >= d {
			d = p.dom + 1
		}
	}
	e.parRan = true
	e.parDoms = d
	e.par = &parGate{
		clocks: par.NewClocks(d),
		pol:    par.Policy{Workers: e.pworkers, Lookahead: int64(e.plook)},
	}
	e.parSetupQueues(d)
	// Events scheduled before Run (process starts) sit in the sequential
	// same-timestamp FIFO; parallel mode releases from the per-domain
	// queues only, so migrate them.  Queue order on equal timestamps is
	// seq order — the FIFO order — so dispatch order is unchanged.
	for i := e.nowHead; i < len(e.nowQ); i++ {
		ev := e.nowQ[i]
		e.pq[ev.p.dom].push(ev)
		e.pqn++
		e.nowQ[i] = event{}
	}
	e.nowQ = e.nowQ[:0]
	e.nowHead = 0
	for dom := 0; dom < d; dom++ {
		e.parHeadRefresh(dom)
	}
	e.parMu.Lock()
	e.parReleaseLocked()
	e.parMu.Unlock()
	return <-e.done
}

// parSetupQueues (re)builds the per-domain pending-event queues for a
// parallel run.  Each domain schedules into its own queue — a heap for
// modest per-domain populations, a ladder queue past ladderProcs per
// domain — and the release path consults the parHeads cache (one key
// per domain) instead of a single shared heap, so window release scans
// O(domains) and a domain's scheduling touches only domain-local
// memory.  The backing stores persist on the engine across pooled runs.
func (e *Engine) parSetupQueues(d int) {
	if cap(e.pq) >= d {
		e.pq = e.pq[:d]
	} else {
		e.pq = make([]eventQueue, d)
	}
	if len(e.procs) >= d*ladderProcs {
		if len(e.pqLads) < d {
			e.pqLads = make([]ladderQueue, d)
			for i := range e.pqLads {
				e.pqLads[i].topStart = minTime
			}
		}
		for i := 0; i < d; i++ {
			e.pq[i] = &e.pqLads[i]
		}
	} else {
		if len(e.pqHeaps) < d {
			e.pqHeaps = make([]eventHeap, d)
		}
		for i := 0; i < d; i++ {
			e.pq[i] = &e.pqHeaps[i]
		}
	}
	e.pqn = 0
	if e.parHeads == nil || e.parHeads.Width() < d {
		e.parHeads = par.NewHeadSet(d)
	} else {
		e.parHeads.Reset()
	}
}

// parHeadRefresh re-derives dom's cached head key after its queue
// changed, discarding stale events as they surface: their generation no
// longer matches, so the sequential kernel would skip them at dispatch —
// dropping them here is the same semantics, and it keeps every cached
// head live.  Callers hold parMu (or run before the window opens).
func (e *Engine) parHeadRefresh(dom int) {
	q := e.pq[dom]
	for {
		ev := q.peek()
		if ev == nil {
			e.parHeads.Clear(dom)
			return
		}
		if ev.gen != ev.p.gen {
			q.pop() // stale wakeup, superseded at push time
			e.pqn--
			continue
		}
		e.parHeads.Set(dom, par.Key{At: int64(ev.at), Seq: ev.seq})
		return
	}
}

// key is p's current span key.
func (p *Proc) key() par.Key { return par.Key{At: int64(p.at), Seq: p.spanSeq} }

// parScheduleLocked is schedule's core under the gate mutex: same
// generation discipline as the sequential path, but always through the
// scheduling process's domain queue — the nowQ fast path is a
// sequential-only optimization, and the domain queues pop in identical
// (at, seq) order because release always takes the minimum head.
func (e *Engine) parScheduleLocked(at Time, p *Proc) {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling into the past: %v < now %v", at, e.now))
	}
	if at > p.sched {
		p.sched = at
	}
	e.seq++
	p.gen++
	e.pq[p.dom].push(event{at: at, seq: e.seq, gen: p.gen, p: p})
	e.pqn++
	// The push may have created a new head, and p's superseded earlier
	// event — now stale — may have been the old one; one refresh covers
	// both (p's events all live in p.dom's queue).
	e.parHeadRefresh(p.dom)
}

// parReleaseLocked releases pending events into the window while the
// policy allows: the globally oldest event is the minimum over the
// per-domain heads (each head is its domain's oldest live event, so the
// minimum over heads is the same event a shared heap's top would be),
// stale events are retired unseen (as in sequential dispatch, they do
// not count), and each released event becomes an incomplete span with a
// clock-vector entry and a resume token.  Events are counted here, at
// release — the same non-stale set the sequential kernel counts at
// dispatch.
func (e *Engine) parReleaseLocked() {
	g := e.par
	if g.stopping {
		return
	}
	released := false
	for e.pqn > 0 {
		top, dom, ok := e.parHeads.Min()
		if !ok {
			break
		}
		min, _, any := g.clocks.Min()
		if !g.pol.Release(top, min, any, g.clocks.Size()) {
			break
		}
		ev := e.pq[dom].pop()
		e.pqn--
		e.parHeadRefresh(dom)
		if ev.gen != ev.p.gen {
			// Stale since its head was cached (the owner terminated):
			// discard without releasing, as sequential dispatch would.
			continue
		}
		e.Events++
		q := ev.p
		q.parked = false
		q.at = ev.at
		q.spanSeq = ev.seq
		g.clocks.Insert(q.dom, par.Key{At: int64(ev.at), Seq: ev.seq}, q.ID)
		g.releases++
		if n := g.clocks.Size(); n > g.peak {
			g.peak = n
		}
		released = true
		q.resume <- struct{}{} // buffered: the span may not be receiving yet
	}
	if released {
		g.windows++
	}
}

// parGrantable reports whether p's span may hold the commit grant: it is
// the oldest incomplete span and no event still pending in the domain
// queues precedes it.  (A preceding pending event would dispatch first
// in the sequential order; the release policy force-releases such
// events, so the condition is eventually satisfied.)  While draining,
// pending order no longer matters — the run's outcome is already decided
// and the remaining spans only need to retire.
func (e *Engine) parGrantable(p *Proc) bool {
	g := e.par
	_, id, ok := g.clocks.Min()
	if !ok || id != p.ID {
		return false
	}
	if g.stopping {
		return true
	}
	if k, _, ok := e.parHeads.Min(); ok && k.Less(p.key()) {
		return false
	}
	return true
}

// parSignalLocked hands the gate to the oldest incomplete span if it is
// waiting and grantable.  Called after every state change that can make a
// waiter grantable: a span retiring, or stale events popped off the heap.
func (e *Engine) parSignalLocked() {
	g := e.par
	_, id, ok := g.clocks.Min()
	if !ok {
		return
	}
	p := e.procs[id]
	if !p.wantGate || !e.parGrantable(p) {
		return
	}
	p.wantGate = false
	p.gate <- struct{}{} // buffered(1); at most one token outstanding
}

// enterGate acquires the commit grant for p's current span.  The first
// global section of a span waits here until the span is the oldest
// incomplete one; once granted, the grant persists for the rest of the
// span (all its sections, through retirement), so a multi-section span is
// atomic with respect to other spans — see the package comment.
func (p *Proc) enterGate() {
	if p.granted {
		return
	}
	e := p.eng
	e.parMu.Lock()
	g := e.par
	for {
		// Force out any heap event older than us (rule 1 of the release
		// policy); its span must retire before our grant.
		e.parReleaseLocked()
		if e.parGrantable(p) {
			break
		}
		// Popping stale events above may have unblocked a different
		// waiter even though we are still obstructed.
		e.parSignalLocked()
		p.wantGate = true
		e.parMu.Unlock()
		<-p.gate
		e.parMu.Lock()
	}
	p.granted = true
	g.sections++
	if p.at > e.now {
		// The oldest incomplete span's dispatch time is the sequential
		// kernel's clock; it advances monotonically across grants.
		e.now = p.at
	}
	e.parMu.Unlock()
}

// parEnd retires p's current span after its final state transition has
// committed.  It returns true when the run is still in parallel mode (the
// caller's goroutine waits for its next release or exits), and false when
// this retirement drained the engine back to sequential mode — the caller
// then re-enters the sequential dispatch loop, which ends the run or
// unwinds it through the ordinary abort machinery.
func (p *Proc) parEnd() bool {
	e := p.eng
	e.parMu.Lock()
	g := e.par
	p.granted = false
	g.clocks.RemoveMin(p.dom)
	if e.stop.Load() {
		g.stopping = true // Interrupt mid-window: stop releasing, drain
	}
	e.parReleaseLocked()
	if g.clocks.Size() == 0 && (g.stopping || e.pqn == 0) {
		stopped := g.stopping
		e.parWin = g.windows
		e.parRel = g.releases
		e.parSec = g.sections
		e.parPeak = g.peak
		if stopped {
			e.pfall = "drained-mid-flight"
		}
		// Merge any per-domain leftovers (an interrupted window's future
		// events, stale entries included — sequential dispatch skips
		// those by generation) into the sequential queue the drain loop
		// pops from.
		for dom := range e.pq {
			for e.pq[dom].len() > 0 {
				e.q.push(e.pq[dom].pop())
			}
		}
		e.pqn = 0
		e.parHeads.Reset()
		e.par = nil // sequential mode from here on
		e.parMu.Unlock()
		if stopped && !e.aborting {
			if e.failure != nil {
				e.beginAbort(nil) // the failure itself is the result
			} else {
				e.beginAbort(&AbortError{At: e.now})
			}
		}
		return false
	}
	e.parSignalLocked()
	e.parMu.Unlock()
	return true
}

// parHold completes the current span: p's next resumption is scheduled at
// `at`, the span retires, and the goroutine waits for its next release.
// Mirrors the schedule+block sequence of the sequential Hold family.
func (p *Proc) parHold(at Time) {
	e := p.eng
	p.enterGate() // scheduling mutates the shared heap: a global section
	e.parMu.Lock()
	e.parScheduleLocked(at, p)
	e.parMu.Unlock()
	if p.parEnd() {
		<-p.resume
		if e.aborting {
			panic(abortSignal{})
		}
		return
	}
	// Retiring this span drained the run out of parallel mode (it was
	// interrupted); our own event is still queued, so rejoin the
	// sequential dispatch loop, which will unwind us.
	p.block()
}

// parFail records a real process panic observed in parallel mode and
// closes the window.  The failing span still retires through the gate in
// order, so the bookkeeping below stays single-writer.
func (e *Engine) parFail(p *Proc, r any) {
	e.parMu.Lock()
	if e.failure == nil {
		// p.at is the span's dispatch time — exactly the sequential
		// kernel's clock when the same panic unwinds there.
		e.failure = fmt.Errorf("sim: process %q panicked at %v: %v", p.Name, p.at, r)
	}
	e.par.stopping = true
	e.parMu.Unlock()
}

// parTerminate is the parallel-mode counterpart of Spawn's sequential
// termination handler: the process's body has returned (or panicked), and
// its final span retires through the gate so termination bookkeeping
// lands in sequential order.
func (e *Engine) parTerminate(p *Proc, r any) {
	if r != nil {
		e.parFail(p, r)
	}
	p.enterGate() // termination is the span's final global section
	e.parMu.Lock()
	p.terminated = true
	p.gen++ // any still-queued wakeup for p is now stale
	e.nLive--
	e.parMu.Unlock()
	if p.parEnd() {
		return // other spans drive the run on; this goroutine exits
	}
	// Drained out of parallel mode: end the run, report a deadlock, or
	// unwind the remaining processes — all via the sequential loop.
	e.advance(p)
}

// Ordered runs f as a global section of the calling process's current
// span: f executes with the commit grant held, serialized in (at, seq)
// dispatch order against every other span's sections.  In sequential mode
// it is exactly f().  Synchronization objects and machine models use it
// around every touch of cross-process state.
func (p *Proc) Ordered(f func()) {
	if p.eng.par == nil {
		f()
		return
	}
	p.enterGate()
	f()
}
