package apps

import (
	"fmt"
	"math/bits"

	"spasm/internal/app"
	"spasm/internal/fourier"
	"spasm/internal/mem"
)

// FFT is the classic n-point complex FFT in its six-step (transpose)
// formulation, the structure that gives the communication phase the
// paper describes: "a processor reads consecutive data items from an
// array", so the 32-byte cache block's four 8-byte items are fetched in
// one miss on the cached machines but cost four network round trips on
// the cache-less LogP machine (paper Figure 1's ~4x latency gap).
//
// Decomposing n = R*C with x[j] = x[j1*C + j2]:
//
//	phase 1: gather-transpose x into W[j2][j1] (remote consecutive reads)
//	phase 2: R-point FFTs over j1 for each local row j2, then twiddle
//	phase 3: gather-transpose W into V[k1][j2] (remote consecutive reads)
//	phase 4: C-point FFTs over j2 for each local row k1
//
// yielding X[k2*R + k1] = V[k1][k2].  Rows are Blocked, so the FFT
// compute phases are entirely local; only the transposes communicate.
type FFT struct {
	N    int // total points, a power of two with R >= P and C >= P
	R, C int
	Seed int64

	// Shared arrays (8-byte elements: 4 per cache block).
	x *mem.Array
	w *mem.Array
	v *mem.Array

	bars []*app.Barrier

	// Host-side values.
	input []complex128
	xv    []complex128 // x values
	wv    []complex128 // W values
	vv    []complex128 // V values
}

// NewFFT returns an FFT instance at the given scale.
func NewFFT(scale Scale, seed int64) app.Program {
	f := &FFT{Seed: seed}
	switch scale {
	case Tiny:
		f.N = 1 << 8 // 256 points: R=C=16
	case Small:
		f.N = 1 << 12 // 4096 points: R=C=64
	default:
		f.N = 1 << 14 // 16384 points: R=C=128
	}
	return f
}

func init() {
	register("fft", NewFFT)
}

// Name implements app.Program.
func (f *FFT) Name() string { return "fft" }

// Setup splits N into R*C, allocates the three matrices and the phase
// barriers, and generates the input signal.
func (f *FFT) Setup(c *app.Ctx) {
	k := bits.TrailingZeros(uint(f.N))
	f.R = 1 << (k / 2)
	f.C = f.N / f.R
	if f.R < c.P || f.C < c.P {
		panic(fmt.Sprintf("fft: N=%d too small for P=%d (R=%d, C=%d)", f.N, c.P, f.R, f.C))
	}
	f.x = c.Space.Alloc("fft.x", f.N, 8, mem.Blocked)
	f.w = c.Space.Alloc("fft.w", f.N, 8, mem.Blocked)
	f.v = c.Space.Alloc("fft.v", f.N, 8, mem.Blocked)
	for i := 0; i < 4; i++ {
		f.bars = append(f.bars, c.NewBarrier(fmt.Sprintf("fft.bar%d", i), c.P, i%c.P))
	}
	f.input = make([]complex128, f.N)
	rng := newRng(f.Seed)
	defer putRng(rng)
	for i := range f.input {
		f.input[i] = complex(rng.Float64()*2-1, rng.Float64()*2-1)
	}
	f.xv = make([]complex128, f.N)
	copy(f.xv, f.input)
	f.wv = make([]complex128, f.N)
	f.vv = make([]complex128, f.N)
}

// Body implements app.Program.
func (f *FFT) Body(p *app.Proc) {
	P := p.Ctx.P
	R, C, n := f.R, f.C, f.N

	// Phase 1: transpose x (R x C) into W (C x R).  This processor
	// owns W rows j2 in [lo2, hi2): for every source row j1 it reads
	// the consecutive slice x[j1*C + lo2 : j1*C + hi2] — the remote
	// consecutive-item reads of the paper's communication phase — and
	// writes its own (local) W column strided.
	p.Phase("transpose-1")
	lo2, hi2 := share(C, P, p.ID)
	for j1 := 0; j1 < R; j1++ {
		p.ReadRange(f.x, j1*C+lo2, j1*C+hi2)
		for j2 := lo2; j2 < hi2; j2++ {
			f.wv[j2*R+j1] = f.xv[j1*C+j2]
			p.WriteElem(f.w, j2*R+j1)
		}
		p.Compute(int64(hi2-lo2) * LoopCycles)
	}
	f.bars[0].Arrive(p)

	// Phase 2: R-point FFT of each owned W row (over j1), then the
	// six-step twiddle W[j2][k1] *= w_n^(j2*k1).  Entirely local.
	p.Phase("row-ffts")
	logR := bits.TrailingZeros(uint(R))
	for j2 := lo2; j2 < hi2; j2++ {
		row := f.wv[j2*R : (j2+1)*R]
		p.ReadRange(f.w, j2*R, (j2+1)*R)
		fourier.InPlace(row, false)
		for k1 := 0; k1 < R; k1++ {
			row[k1] *= fourier.Twiddle(n, j2, k1)
		}
		p.Compute(int64(R)*int64(logR)*FlopCycles + int64(R)*2*FlopCycles)
		p.WriteRange(f.w, j2*R, (j2+1)*R)
	}
	f.bars[1].Arrive(p)

	// Phase 3: transpose W (C x R) into V (R x C): owned V rows k1 in
	// [lo1, hi1); read consecutive remote slices W[j2*R + lo1 : hi1].
	p.Phase("transpose-2")
	lo1, hi1 := share(R, P, p.ID)
	for j2 := 0; j2 < C; j2++ {
		p.ReadRange(f.w, j2*R+lo1, j2*R+hi1)
		for k1 := lo1; k1 < hi1; k1++ {
			f.vv[k1*C+j2] = f.wv[j2*R+k1]
			p.WriteElem(f.v, k1*C+j2)
		}
		p.Compute(int64(hi1-lo1) * LoopCycles)
	}
	f.bars[2].Arrive(p)

	// Phase 4: C-point FFT of each owned V row (over j2).  Local.
	p.Phase("col-ffts")
	logC := bits.TrailingZeros(uint(C))
	for k1 := lo1; k1 < hi1; k1++ {
		row := f.vv[k1*C : (k1+1)*C]
		p.ReadRange(f.v, k1*C, (k1+1)*C)
		fourier.InPlace(row, false)
		p.Compute(int64(C) * int64(logC) * FlopCycles)
		p.WriteRange(f.v, k1*C, (k1+1)*C)
	}
	f.bars[3].Arrive(p)
}

// Check compares the distributed result, X[k2*R + k1] = V[k1][k2],
// against an independent host FFT of the input.
func (f *FFT) Check() error {
	want := fourier.FFT(f.input)
	got := make([]complex128, f.N)
	for k1 := 0; k1 < f.R; k1++ {
		for k2 := 0; k2 < f.C; k2++ {
			got[k2*f.R+k1] = f.vv[k1*f.C+k2]
		}
	}
	if err := fourier.MaxErr(got, want); err > 1e-6*float64(f.N) {
		return fmt.Errorf("fft: max error %g vs reference", err)
	}
	return nil
}
