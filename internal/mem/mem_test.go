package mem

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewSpaceValidation(t *testing.T) {
	mustPanic(t, func() { NewSpace(0, 32) })
	mustPanic(t, func() { NewSpace(4, 33) })
	mustPanic(t, func() { NewSpace(4, 0) })
	s := NewSpace(4, 32)
	if s.P() != 4 || s.BlockBytes() != 32 {
		t.Errorf("P=%d BlockBytes=%d", s.P(), s.BlockBytes())
	}
}

func TestBlockArithmetic(t *testing.T) {
	s := NewSpace(2, 32)
	if s.BlockOf(0) != 0 || s.BlockOf(31) != 0 || s.BlockOf(32) != 1 {
		t.Error("BlockOf wrong")
	}
	if s.BlockBase(3) != 96 {
		t.Errorf("BlockBase(3) = %d", s.BlockBase(3))
	}
}

func TestBlockedPlacement(t *testing.T) {
	s := NewSpace(4, 32)
	a := s.Alloc("x", 64, 8, Blocked) // 512 bytes, 128 per node
	for i := 0; i < 64; i++ {
		want := i / 16 // 16 elements of 8 bytes per 128-byte chunk
		if got := a.HomeOf(i); got != want {
			t.Fatalf("HomeOf(%d) = %d, want %d", i, got, want)
		}
	}
	lo, hi := a.OwnerRange(1)
	if lo != 16 || hi != 32 {
		t.Errorf("OwnerRange(1) = [%d,%d)", lo, hi)
	}
}

func TestBlockedPaddingNoSplitBlocks(t *testing.T) {
	// 10 elements of 8 bytes over 4 nodes: 80 bytes, 20/node before
	// padding — the allocator must pad chunks to block multiples.
	s := NewSpace(4, 32)
	a := s.Alloc("x", 10, 8, Blocked)
	for i := 0; i < 10; i++ {
		addr := a.At(i)
		blockStart := s.BlockBase(s.BlockOf(addr))
		blockEnd := blockStart + Addr(s.BlockBytes()) - 1
		if s.Home(blockStart) != s.Home(blockEnd) {
			t.Fatalf("block of element %d spans two homes", i)
		}
	}
}

func TestInterleavedPlacement(t *testing.T) {
	s := NewSpace(4, 32)
	a := s.Alloc("x", 32, 32, Interleaved) // one element per block
	for i := 0; i < 32; i++ {
		if got := a.HomeOf(i); got != i%4 {
			t.Fatalf("HomeOf(%d) = %d, want %d", i, got, i%4)
		}
	}
}

func TestFixedPlacement(t *testing.T) {
	s := NewSpace(4, 32)
	a := s.AllocAt("lock", 4, 8, 2)
	for i := 0; i < 4; i++ {
		if a.HomeOf(i) != 2 {
			t.Fatalf("HomeOf(%d) != 2", i)
		}
	}
	mustPanic(t, func() { s.AllocAt("bad", 1, 8, 7) })
	mustPanic(t, func() { s.Alloc("bad", 1, 8, Fixed) })
}

func TestRegionsDisjointAndFindable(t *testing.T) {
	s := NewSpace(4, 32)
	arrs := []*Array{
		s.Alloc("a", 100, 8, Blocked),
		s.Alloc("b", 7, 4, Interleaved),
		s.AllocAt("c", 3, 8, 1),
		s.Alloc("d", 1, 1, Blocked),
	}
	for _, a := range arrs {
		for i := 0; i < a.N; i++ {
			if r := s.Region(a.At(i)); r != a {
				t.Fatalf("Region(%s[%d]) = %v", a.Name, i, r)
			}
		}
	}
	if s.Region(s.Size()) != nil {
		t.Error("Region past end should be nil")
	}
	mustPanic(t, func() { s.Home(s.Size() + 100) })
}

func TestArrayBoundsPanic(t *testing.T) {
	s := NewSpace(2, 32)
	a := s.Alloc("x", 4, 8, Blocked)
	mustPanic(t, func() { a.At(-1) })
	mustPanic(t, func() { a.At(4) })
}

func TestOwnerRangeCoversAllElements(t *testing.T) {
	s := NewSpace(8, 32)
	a := s.Alloc("x", 1000, 8, Blocked)
	covered := make([]bool, a.N)
	for n := 0; n < 8; n++ {
		lo, hi := a.OwnerRange(n)
		for i := lo; i < hi; i++ {
			if covered[i] {
				t.Fatalf("element %d in two ranges", i)
			}
			covered[i] = true
			if a.HomeOf(i) != n {
				t.Fatalf("OwnerRange(%d) contains element %d homed at %d", n, i, a.HomeOf(i))
			}
		}
	}
	for i, c := range covered {
		if !c {
			t.Fatalf("element %d uncovered", i)
		}
	}
}

func TestPolicyString(t *testing.T) {
	if Blocked.String() != "blocked" || Interleaved.String() != "interleaved" ||
		Fixed.String() != "fixed" || Policy(9).String() == "" {
		t.Error("Policy.String broken")
	}
}

// Property: for random allocation sequences, every element address maps
// back to its own array, homes are in range, and regions never overlap.
func TestAllocationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := 1 << (1 + rng.Intn(5)) // 2..32
		s := NewSpace(p, 32)
		type probe struct {
			a *Array
			i int
		}
		var probes []probe
		for k := 0; k < 10; k++ {
			n := 1 + rng.Intn(200)
			es := []int{1, 2, 4, 8, 16, 32}[rng.Intn(6)]
			var a *Array
			switch rng.Intn(3) {
			case 0:
				a = s.Alloc("a", n, es, Blocked)
			case 1:
				a = s.Alloc("a", n, es, Interleaved)
			default:
				a = s.AllocAt("a", n, es, rng.Intn(p))
			}
			for j := 0; j < 5; j++ {
				probes = append(probes, probe{a, rng.Intn(n)})
			}
		}
		for _, pr := range probes {
			addr := pr.a.At(pr.i)
			if s.Region(addr) != pr.a {
				return false
			}
			h := s.Home(addr)
			if h < 0 || h >= p {
				return false
			}
			// home is consistent for every byte of the element
			// that stays within one block
			if pr.a.ElemSize <= s.BlockBytes() {
				if s.BlockOf(addr) == s.BlockOf(addr+Addr(pr.a.ElemSize)-1) &&
					s.Home(addr+Addr(pr.a.ElemSize)-1) != h {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	f()
}
