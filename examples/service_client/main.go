// Example service_client starts an in-process spasmd, submits a run
// through the Go client, shows that an identical resubmission is served
// from the content-addressed result cache, pulls a paper figure through
// the same pool, and prints the service metrics — the whole
// simulation-as-a-service loop in one self-contained program.
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"spasm/internal/service"
	"spasm/internal/service/client"
)

func main() {
	// An in-process server on an ephemeral port; point the client at a
	// remote spasmd instead by replacing base with its URL.
	svc := service.New(service.Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{Handler: svc.Handler()}
	go hs.Serve(ln)
	base := "http://" + ln.Addr().String()
	fmt.Println("spasmd at", base)

	ctx := context.Background()
	cl := client.New(base)

	req := service.RunRequest{App: "fft", Scale: "tiny", Machine: "target", Topology: "mesh", P: 16}
	t0 := time.Now()
	st, err := cl.Run(ctx, req)
	if err != nil {
		log.Fatal(err)
	}
	doc, err := client.DecodeResult(st)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfirst submission (simulated in %v):\n", time.Since(t0).Round(time.Millisecond))
	fmt.Printf("  run %s...\n", st.ID[:16])
	fmt.Printf("  %s on %s/%s p=%d: total %.1f us (compute %.1f, memory %.1f, latency %.1f, contention %.1f, sync %.1f)\n",
		doc.Program, doc.Machine, doc.Topology, doc.P, doc.TotalUS,
		doc.ComputeUS, doc.MemoryUS, doc.LatencyUS, doc.ContentionUS, doc.SyncUS)

	t0 = time.Now()
	st2, err := cl.SubmitRun(ctx, req)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nidentical resubmission (answered in %v):\n", time.Since(t0).Round(time.Microsecond))
	fmt.Printf("  state=%s cached=%v — served from the content-addressed cache\n", st2.State, st2.Cached)

	fig, err := cl.Figure(ctx, 7, client.SweepOpts{Scale: "tiny", Procs: []int{2, 4, 8}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfigure %d — %s:\n", fig.Num, fig.Caption)
	for _, s := range fig.Series {
		fmt.Printf("  %-10s", s.Machine)
		for _, pt := range s.Points {
			fmt.Printf("  p=%d: %8.1f us", pt.P, pt.ValueUS)
		}
		fmt.Println()
	}

	page, err := cl.Metrics(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nservice counters:")
	for _, name := range []string{
		"spasmd_jobs_submitted_total", "spasmd_jobs_done_total",
		"spasmd_cache_hits_total", "spasmd_cache_misses_total",
	} {
		if v, ok := client.MetricValue(page, name); ok {
			fmt.Printf("  %-28s %.0f\n", name, v)
		}
	}

	hs.Shutdown(ctx)
	if err := svc.Shutdown(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ndrained and stopped.")
}
