// fft_locality reproduces the paper's Figure 1 mechanism in isolation:
// the FFT's communication phase reads *consecutive* remote items, so a
// machine with caches fetches four 8-byte items per 32-byte block miss,
// while the cache-less LogP machine pays a network round trip for every
// single item — roughly a 4x latency-overhead gap.
//
//	go run ./examples/fft_locality
package main

import (
	"fmt"
	"log"

	"spasm"
)

func main() {
	fmt.Println("FFT latency overhead: why ignoring locality costs ~4x (paper Figure 1)")
	fmt.Println()
	fmt.Printf("%6s %14s %14s %14s %10s\n", "procs", "LogP_us", "LogP+Cache_us", "Target_us", "LogP/CL")

	for _, p := range []int{2, 4, 8, 16} {
		var vals []float64
		for _, kind := range []spasm.Kind{spasm.LogP, spasm.CLogP, spasm.Target} {
			res, err := spasm.Run("fft", spasm.Small, 1, spasm.Config{
				Kind: kind, Topology: "full", P: p,
			})
			if err != nil {
				log.Fatal(err)
			}
			vals = append(vals, res.Stats.Sum(spasm.Latency).Micros())
		}
		fmt.Printf("%6d %14.1f %14.1f %14.1f %9.1fx\n",
			p, vals[0], vals[1], vals[2], vals[0]/vals[1])
	}

	fmt.Println()
	fmt.Println("The LogP machine pays a round trip per 8-byte item; the cached")
	fmt.Println("machines miss once per 32-byte block (4 items).  The residual gap")
	fmt.Println("between LogP+Cache and Target is L's pessimism: L prices every")
	fmt.Println("message as a full 32-byte transfer, but requests are only 8 bytes.")
}
