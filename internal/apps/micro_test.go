package apps

import (
	"testing"

	"spasm/internal/app"
	"spasm/internal/machine"
	"spasm/internal/network"
	"spasm/internal/stats"
	"spasm/internal/trace"
)

func runMicro(t *testing.T, pattern Pattern, p int) *stats.Run {
	t.Helper()
	prog := NewMicro(pattern, 200, 50, 1)
	res, err := app.Run(prog, machine.Config{Kind: machine.Target, Topology: "mesh", P: p})
	if err != nil {
		t.Fatal(err)
	}
	return res.Stats
}

func TestMicroPatternsRun(t *testing.T) {
	for _, pat := range []Pattern{UniformPattern, HotSpotPattern, NeighborPattern} {
		r := runMicro(t, pat, 4)
		refs := r.Count(func(q *stats.Proc) uint64 { return q.Reads + q.Writes })
		if refs != 4*200 {
			t.Errorf("%v: %d references, want 800", pat, refs)
		}
	}
}

func TestMicroNotInRegistry(t *testing.T) {
	// Microbenchmarks must not perturb the paper's five-app suite.
	for _, name := range Names() {
		if name == "micro-uniform" || name == "micro-hotspot" || name == "micro-neighbor" {
			t.Errorf("microbenchmark %q leaked into the registry", name)
		}
	}
}

func TestMicroHotSpotConcentratesTraffic(t *testing.T) {
	// The hot block is homed at node 0: under the hot-spot pattern
	// node 0's ejection side must see disproportionate traffic,
	// visible as higher total contention than uniform.
	uni := runMicro(t, UniformPattern, 8)
	hot := runMicro(t, HotSpotPattern, 8)
	if hot.Sum(stats.Contention) <= uni.Sum(stats.Contention) {
		t.Errorf("hot-spot contention %v not above uniform %v",
			hot.Sum(stats.Contention), uni.Sum(stats.Contention))
	}
}

func TestMicroNeighborIsLocalised(t *testing.T) {
	// Neighbour traffic has communication locality: its mean route
	// length on the mesh is well below uniform traffic's (ID-adjacent
	// processors are mesh-adjacent except at row boundaries).
	topo := network.NewMesh(16)
	meanHops := func(pattern Pattern) float64 {
		prog := NewMicro(pattern, 200, 50, 1)
		var rec *trace.Recorder
		res, err := app.RunWrapped(prog, machine.Config{
			Kind: machine.CLogP, Topology: "mesh", P: 16,
		}, func(m machine.Machine) machine.Machine {
			rec = trace.NewRecorder(m)
			return rec
		})
		if err != nil {
			t.Fatal(err)
		}
		hops, n := 0, 0
		for _, e := range rec.Events {
			home := res.Space.Home(e.Addr)
			if home != int(e.Proc) {
				hops += topo.Hops(int(e.Proc), home)
				n++
			}
		}
		if n == 0 {
			t.Fatal("no remote references")
		}
		return float64(hops) / float64(n)
	}
	uni, nb := meanHops(UniformPattern), meanHops(NeighborPattern)
	if nb >= uni*0.8 {
		t.Errorf("neighbour mean hops %.2f not below uniform %.2f", nb, uni)
	}
}

func TestMicroThinkTimeControlsLoad(t *testing.T) {
	slow := NewMicro(UniformPattern, 100, 2000, 1)
	fast := NewMicro(UniformPattern, 100, 20, 1)
	resSlow, err := app.Run(slow, machine.Config{Kind: machine.Target, Topology: "cube", P: 4})
	if err != nil {
		t.Fatal(err)
	}
	resFast, err := app.Run(fast, machine.Config{Kind: machine.Target, Topology: "cube", P: 4})
	if err != nil {
		t.Fatal(err)
	}
	// More think time: longer run but less contention per message.
	if resSlow.Stats.Total <= resFast.Stats.Total {
		t.Error("think time did not lengthen the run")
	}
	perMsg := func(r *stats.Run) float64 {
		return float64(r.Sum(stats.Contention)) / float64(r.Messages())
	}
	if perMsg(resSlow.Stats) >= perMsg(resFast.Stats) {
		t.Errorf("offered load did not drive per-message contention: %.1f vs %.1f",
			perMsg(resSlow.Stats), perMsg(resFast.Stats))
	}
}

func TestMicroPatternString(t *testing.T) {
	if Pattern(9).String() == "" {
		t.Error("unknown pattern name")
	}
	prog := NewMicro(HotSpotPattern, 10, 1, 2)
	if prog.Name() != "micro-hotspot" {
		t.Errorf("name = %q", prog.Name())
	}
}
