package service_test

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"

	"spasm"
	"spasm/internal/service"
)

// TestCoalescingUnderConcurrency submits a burst of identical and
// distinct specs from many goroutines against a one-worker server, so
// identical submissions overlap in flight and must coalesce onto one
// job.  Every waiter gets the same result bytes, and the accounting has
// to balance: each submission of a spec is either the one that queued
// the job, a coalesced waiter, or a cache hit.  Run it under -race — the
// coalescing path is Submit's active-map check racing job completion.
func TestCoalescingUnderConcurrency(t *testing.T) {
	svc, _ := newTestService(t, service.Config{Workers: 1, CacheSize: 64})
	ctx := context.Background()

	specs := []spasm.Spec{
		{App: "fft", Scale: spasm.Tiny, Machine: spasm.Target, Topology: "mesh", P: 8},
		{App: "is", Scale: spasm.Tiny, Machine: spasm.CLogP, P: 4},
		{App: "ep", Scale: spasm.Tiny, Machine: spasm.LogP, Topology: "cube", P: 8},
	}
	const perSpec = 8

	var wg sync.WaitGroup
	docs := make([][]byte, len(specs)*perSpec)
	errs := make([]error, len(specs)*perSpec)
	for si, spec := range specs {
		for k := 0; k < perSpec; k++ {
			wg.Add(1)
			go func(slot int, spec spasm.Spec) {
				defer wg.Done()
				j, _, err := svc.Submit(spec)
				if err != nil {
					errs[slot] = err
					return
				}
				if _, err := svc.Wait(ctx, j); err != nil {
					errs[slot] = err
					return
				}
				st, ok := svc.Status(j.ID())
				if !ok {
					errs[slot] = fmt.Errorf("completed job %s not found", j.ID()[:12])
					return
				}
				if st.State != service.StateDone {
					errs[slot] = fmt.Errorf("job finished %s (%s)", st.State, st.Error)
					return
				}
				docs[slot] = st.Result
			}(si*perSpec+k, spec)
		}
	}
	wg.Wait()
	for slot, err := range errs {
		if err != nil {
			t.Fatalf("slot %d: %v", slot, err)
		}
	}
	// All waiters on one spec observed byte-identical statistics.
	for si := range specs {
		base := docs[si*perSpec]
		for k := 1; k < perSpec; k++ {
			if !bytes.Equal(docs[si*perSpec+k], base) {
				t.Fatalf("spec %d: waiter %d saw different result bytes", si, k)
			}
		}
	}

	// Accounting: every submission was queued, coalesced, or a cache
	// hit; each spec simulated exactly once.
	page := svc.RenderMetrics()
	queued := metricValue(t, page, "spasmd_jobs_submitted_total")
	coalesced := metricValue(t, page, "spasmd_runs_coalesced_total")
	hits := metricValue(t, page, "spasmd_cache_hits_total")
	done := metricValue(t, page, "spasmd_jobs_done_total")
	if total := queued + coalesced + hits; total != int64(len(specs)*perSpec) {
		t.Fatalf("submissions unaccounted for: queued %d + coalesced %d + hits %d = %d, want %d",
			queued, coalesced, hits, total, len(specs)*perSpec)
	}
	if queued != int64(len(specs)) || done != int64(len(specs)) {
		t.Fatalf("each spec should simulate exactly once: queued %d, done %d, want %d",
			queued, done, len(specs))
	}
	if alias := metricValue(t, page, "spasmd_jobs_coalesced_total"); alias != coalesced {
		t.Fatalf("jobs_coalesced alias %d != runs_coalesced %d", alias, coalesced)
	}
	// The worker ran on the context pool; its counters are exported.
	if metricValue(t, page, "spasmd_pool_misses_total")+metricValue(t, page, "spasmd_pool_hits_total") != done {
		t.Fatalf("pool hit+miss should equal runs executed:\n%s", page)
	}
	if metricValue(t, page, "spasmd_pool_contexts_live") < 1 {
		t.Fatalf("no live pool contexts after %d runs", done)
	}
}

// TestProfileSingleflight issues concurrent profile requests for one
// completed run: exactly one computation may happen, the rest must
// coalesce and read the memoized encoding, and everyone gets identical
// bytes.
func TestProfileSingleflight(t *testing.T) {
	svc, _ := newTestService(t, service.Config{Workers: 2, CacheSize: 64})
	ctx := context.Background()

	spec := spasm.Spec{App: "fft", Scale: spasm.Tiny, Machine: spasm.Target, Topology: "mesh", P: 8}
	j, _, err := svc.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Wait(ctx, j); err != nil {
		t.Fatal(err)
	}

	const waiters = 8
	var wg sync.WaitGroup
	raws := make([][]byte, waiters)
	errs := make([]error, waiters)
	for k := 0; k < waiters; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			_, raw, err := svc.Profile(j.ID())
			raws[k], errs[k] = raw, err
		}(k)
	}
	wg.Wait()
	for k, err := range errs {
		if err != nil {
			t.Fatalf("waiter %d: %v", k, err)
		}
	}
	for k := 1; k < waiters; k++ {
		if !bytes.Equal(raws[k], raws[0]) {
			t.Fatalf("waiter %d got different profile bytes", k)
		}
	}
	page := svc.RenderMetrics()
	if misses := metricValue(t, page, "spasmd_profile_cache_misses_total"); misses != 1 {
		t.Fatalf("profile computed %d times, want exactly 1 (singleflight)", misses)
	}
	computedPlus := metricValue(t, page, "spasmd_profile_cache_hits_total") +
		metricValue(t, page, "spasmd_profiles_coalesced_total")
	if computedPlus != waiters-1 {
		t.Fatalf("hits + coalesced = %d, want %d", computedPlus, waiters-1)
	}
}

// metricValue extracts one un-labelled counter from a rendered metrics
// page.
func metricValue(t *testing.T, page, name string) int64 {
	t.Helper()
	for _, line := range strings.Split(page, "\n") {
		var v int64
		if _, err := fmt.Sscanf(line, name+" %d", &v); err == nil && strings.HasPrefix(line, name+" ") {
			return v
		}
	}
	t.Fatalf("metric %s not found in:\n%s", name, page)
	return 0
}
