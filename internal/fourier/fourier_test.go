package fourier

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func randomSignal(n int, seed int64) []complex128 {
	rng := rand.New(rand.NewSource(seed))
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.Float64()*2-1, rng.Float64()*2-1)
	}
	return x
}

func TestFFTMatchesDFT(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 64, 256} {
		x := randomSignal(n, int64(n))
		if err := MaxErr(FFT(x), DFT(x)); err > 1e-9*float64(n) {
			t.Errorf("n=%d: max error %g", n, err)
		}
	}
}

func TestFFTInverseRoundTrip(t *testing.T) {
	x := randomSignal(1024, 7)
	y := FFT(x)
	InPlace(y, true)
	for i := range y {
		y[i] /= complex(float64(len(y)), 0)
	}
	if err := MaxErr(x, y); err > 1e-10 {
		t.Errorf("round-trip error %g", err)
	}
}

func TestFFTImpulse(t *testing.T) {
	// FFT of a unit impulse is all ones.
	x := make([]complex128, 16)
	x[0] = 1
	for k, v := range FFT(x) {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Errorf("bin %d = %v, want 1", k, v)
		}
	}
}

func TestFFTConstant(t *testing.T) {
	// FFT of a constant is an impulse at bin 0 of magnitude n.
	n := 32
	x := make([]complex128, n)
	for i := range x {
		x[i] = 1
	}
	y := FFT(x)
	if cmplx.Abs(y[0]-complex(float64(n), 0)) > 1e-12 {
		t.Errorf("bin 0 = %v", y[0])
	}
	for k := 1; k < n; k++ {
		if cmplx.Abs(y[k]) > 1e-10 {
			t.Errorf("bin %d = %v, want 0", k, y[k])
		}
	}
}

func TestInPlaceDoesNotAllocateNewSlice(t *testing.T) {
	x := randomSignal(8, 3)
	orig := x
	InPlace(x, false)
	if &x[0] != &orig[0] {
		t.Error("InPlace moved the slice")
	}
}

func TestNonPowerOfTwoPanics(t *testing.T) {
	for _, n := range []int{0, 3, 6, 12} {
		n := n
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("n=%d accepted", n)
				}
			}()
			InPlace(make([]complex128, n), false)
		}()
	}
}

func TestTwiddleProperties(t *testing.T) {
	if cmplx.Abs(Twiddle(8, 0, 5)-1) > 1e-15 {
		t.Error("ω^0 != 1")
	}
	// ω_n^(n) = 1
	if cmplx.Abs(Twiddle(8, 4, 2)-1) > 1e-12 {
		t.Error("ω_8^8 != 1")
	}
	// ω_4^1 = -i
	if cmplx.Abs(Twiddle(4, 1, 1)-complex(0, -1)) > 1e-12 {
		t.Error("ω_4^1 != -i")
	}
}

// Property: Parseval's theorem — energy is preserved up to the factor n.
func TestParsevalProperty(t *testing.T) {
	f := func(seed int64) bool {
		n := 128
		x := randomSignal(n, seed)
		y := FFT(x)
		var ex, ey float64
		for i := range x {
			ex += real(x[i])*real(x[i]) + imag(x[i])*imag(x[i])
			ey += real(y[i])*real(y[i]) + imag(y[i])*imag(y[i])
		}
		return math.Abs(ey-float64(n)*ex) < 1e-6*ey
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: linearity of the transform.
func TestLinearityProperty(t *testing.T) {
	f := func(seed int64) bool {
		n := 64
		a := randomSignal(n, seed)
		b := randomSignal(n, seed+1)
		sum := make([]complex128, n)
		for i := range sum {
			sum[i] = a[i] + 2*b[i]
		}
		fa, fb, fs := FFT(a), FFT(b), FFT(sum)
		for i := range fs {
			if cmplx.Abs(fs[i]-(fa[i]+2*fb[i])) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
