// Package runpool pools the per-run construction state of a simulation —
// the discrete-event engine, the address space, and the machine model —
// so sweep workloads pay topology route tables, fabric resource arrays,
// flattened cache-line arrays, and directory chunk allocation once per
// (configuration) key instead of once per run.
//
// A context is keyed by machine.Config.Canonical(): machine kind,
// topology, node count, cache geometry, costs, and network parameters.
// Memory *layout* is deliberately not part of the key — different
// applications lay out the shared space differently — which is why every
// layout-dependent memo (block home tables, directory home stamps, the
// directory chunk index) is re-stamped on reuse; see the Reset methods in
// internal/sim, internal/mem, internal/cache, internal/coherence,
// internal/network, and internal/logp, and the reset-invariants section
// of docs/INTERNALS.md.
//
// The pool is a bounded freelist rather than a sync.Pool: contexts are
// worth keeping across GC cycles (their value is precisely that they
// survive from run to run), and a hard idle cap bounds peak memory on
// sweeps that touch many configurations.
package runpool

import (
	"fmt"
	"sync"

	"spasm/internal/machine"
	"spasm/internal/mem"
	"spasm/internal/sim"
)

// DefaultMaxIdle is the default cap on idle contexts retained per pool.
// A sweep worker typically cycles through a handful of configurations
// (kinds x topologies at one or two node counts), so a small cap captures
// the reuse while bounding retained memory.
const DefaultMaxIdle = 16

// Ctx is one pooled run context: an engine and an address space ready for
// an application's Setup, plus the reusable machine that binds to the
// space afterwards.  Between Get and Put the context belongs exclusively
// to one caller; the Engine and Space it hands out are reset, so a run on
// a pooled context is observationally identical to one on fresh state.
type Ctx struct {
	cfg        machine.Config // canonical
	blockBytes int

	Eng   *sim.Engine
	Space *mem.Space

	reusable *machine.Reusable
}

// Config returns the canonical configuration the context is keyed by.
func (c *Ctx) Config() machine.Config { return c.cfg }

// Bind returns the context's machine attached to its (set-up) address
// space.  Call it after the application's Setup has allocated, because
// machine construction sizes the coherence directory from the space
// footprint.
func (c *Ctx) Bind() (machine.Machine, error) {
	return c.reusable.Bind(c.Space)
}

// Stats is a snapshot of a pool's reuse counters.
type Stats struct {
	// Hits counts Gets served by an idle context; Misses counts Gets
	// that had to construct one.
	Hits   uint64
	Misses uint64
	// Live is the number of contexts currently alive — idle in the pool
	// or checked out — i.e. constructed and not discarded.
	Live int
	// Discarded counts contexts dropped instead of retained: idle-cap
	// overflow on Put, plus explicit Discards after failed runs.
	Discarded int
}

// Pool is a bounded freelist of run contexts keyed by canonical machine
// configuration.  It is safe for concurrent use; the contexts it hands
// out are not (each belongs to one caller between Get and Put).
type Pool struct {
	mu      sync.Mutex
	free    map[machine.Config][]*Ctx
	maxIdle int
	idle    int

	hits      uint64
	misses    uint64
	created   int
	discarded int

	// byKind breaks the counters down by machine kind (the canonical
	// configuration's Kind string), so a pool serving both flow-tier and
	// detailed contexts can report them apart (the spasmd /metrics pool
	// gauges).
	byKind map[string]*Stats
}

// New returns a pool retaining at most maxIdle idle contexts
// (DefaultMaxIdle if maxIdle <= 0).
func New(maxIdle int) *Pool {
	if maxIdle <= 0 {
		maxIdle = DefaultMaxIdle
	}
	return &Pool{
		free:    make(map[machine.Config][]*Ctx),
		maxIdle: maxIdle,
		byKind:  make(map[string]*Stats),
	}
}

// kindStats returns the per-kind counter block, creating it on first
// use.  Callers must hold p.mu.
func (p *Pool) kindStats(kind string) *Stats {
	s := p.byKind[kind]
	if s == nil {
		s = &Stats{}
		p.byKind[kind] = s
	}
	return s
}

// Get returns a context for cfg, reusing an idle one when available.  A
// reused context comes back with its engine and address space reset; its
// machine resets on the next Bind.  The caller must return the context
// with Put when the run is over — including on error paths, since a Get
// always resets before reuse.
func (p *Pool) Get(cfg machine.Config) (*Ctx, error) {
	if cfg.P < 1 {
		return nil, fmt.Errorf("runpool: Get with P=%d", cfg.P)
	}
	key := cfg.Canonical()
	kind := key.Kind.String()
	p.mu.Lock()
	if l := p.free[key]; len(l) > 0 {
		ctx := l[len(l)-1]
		l[len(l)-1] = nil
		p.free[key] = l[:len(l)-1]
		p.idle--
		p.hits++
		ks := p.kindStats(kind)
		ks.Hits++
		p.mu.Unlock()
		ctx.Eng.Reset()
		ctx.Space.Reset(key.P, ctx.blockBytes)
		return ctx, nil
	}
	p.misses++
	p.created++
	ks := p.kindStats(kind)
	ks.Misses++
	ks.Live++
	p.mu.Unlock()
	bb := key.Cache.BlockBytes
	if bb == 0 {
		bb = mem.DefaultBlockBytes
	}
	return &Ctx{
		cfg:        key,
		blockBytes: bb,
		Eng:        sim.NewEngine(),
		Space:      mem.NewSpace(key.P, bb),
		reusable:   machine.NewReusable(key),
	}, nil
}

// Put returns a context to the pool for reuse.  If the pool is at its
// idle cap the context is discarded instead, bounding retained memory.
// The context's state is left as the run finished it — any Result still
// referencing its Space or Machine stays readable until the context is
// next handed out, at which point Get/Bind reset it.
func (p *Pool) Put(c *Ctx) {
	if c == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.idle >= p.maxIdle {
		p.discarded++
		ks := p.kindStats(c.cfg.Kind.String())
		ks.Discarded++
		ks.Live--
		// The context is leaving the pool for good: let the machine hand
		// recyclable allocations (LogP port arrays) back to their
		// freelists so the next construction of this kind reuses them.
		c.reusable.Release()
		return
	}
	p.free[c.cfg] = append(p.free[c.cfg], c)
	p.idle++
}

// Discard drops a checked-out context permanently instead of returning
// it to the freelist.  It is the mandatory return path for a context
// whose run did not complete cleanly — above all an aborted (timed-out
// or canceled) run: the engine, space, and machine were left mid-flight,
// and the reset invariants of docs/INTERNALS.md §9 are only established
// for state a run finished with.  Discarding costs the next run of that
// configuration a fresh construction, which is exactly the price of not
// reasoning about half-finished state.
func (p *Pool) Discard(c *Ctx) {
	if c == nil {
		return
	}
	p.mu.Lock()
	p.discarded++
	ks := p.kindStats(c.cfg.Kind.String())
	ks.Discarded++
	ks.Live--
	p.mu.Unlock()
	// Port-array contents are arbitrary on reacquisition (lazy re-stamp
	// covers them), so even a machine abandoned mid-flight may donate its
	// arrays back to the freelist.
	c.reusable.Release()
}

// Stats returns a snapshot of the pool's reuse counters.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return Stats{Hits: p.hits, Misses: p.misses, Live: p.created - p.discarded, Discarded: p.discarded}
}

// StatsByKind returns per-machine-kind snapshots of the pool's counters,
// keyed by the canonical configuration's kind string ("flow", "target",
// ...).  A pool serving an adaptive-fidelity workload holds both
// flow-tier and detailed contexts; this is how monitoring tells their
// populations apart.
func (p *Pool) StatsByKind() map[string]Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[string]Stats, len(p.byKind))
	for k, s := range p.byKind {
		out[k] = *s
	}
	return out
}
