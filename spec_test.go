package spasm_test

import (
	"regexp"
	"strconv"
	"strings"
	"testing"

	"spasm"
)

// TestSpecKeyDefaultInsensitivity: a spec with defaults left at their
// zero values and one with the defaults spelled out explicitly must
// share a key (and hash) — the property the content-addressed result
// cache depends on.
func TestSpecKeyDefaultInsensitivity(t *testing.T) {
	implicit := spasm.Spec{App: "fft", Machine: spasm.Target, P: 4}
	explicit := spasm.Spec{
		App:      "fft",
		Scale:    spasm.Tiny,
		Seed:     1,
		Machine:  spasm.Target,
		Topology: "full",
		P:        4,
		PortMode: spasm.CombinedGap,
		Protocol: spasm.BerkeleyProtocol,
	}
	if implicit.Key() != explicit.Key() {
		t.Fatalf("default-insensitivity violated:\n  implicit %q\n  explicit %q",
			implicit.Key(), explicit.Key())
	}
	if implicit.Hash() != explicit.Hash() {
		t.Fatalf("hashes differ for identical keys")
	}
}

// TestSpecKeyStable: the key is deterministic across calls and uses the
// documented fixed field order.
func TestSpecKeyStable(t *testing.T) {
	s := spasm.Spec{App: "is", Scale: spasm.Small, Seed: 7, Machine: spasm.LogP, Topology: "mesh", P: 16}
	want := "app=is scale=small seed=7 machine=logp topo=mesh p=16 port=combined proto=berkeley adaptive=false esc=0"
	for i := 0; i < 3; i++ {
		if got := s.Key(); got != want {
			t.Fatalf("call %d: Key() = %q, want %q", i, got, want)
		}
	}
}

// TestSpecKeyDiscriminates: changing any field changes the key.
func TestSpecKeyDiscriminates(t *testing.T) {
	base := spasm.Spec{App: "cg", Scale: spasm.Small, Seed: 1, Machine: spasm.Target, Topology: "full", P: 8}
	variants := []spasm.Spec{
		{App: "ep", Scale: spasm.Small, Seed: 1, Machine: spasm.Target, Topology: "full", P: 8},
		{App: "cg", Scale: spasm.Medium, Seed: 1, Machine: spasm.Target, Topology: "full", P: 8},
		{App: "cg", Scale: spasm.Small, Seed: 2, Machine: spasm.Target, Topology: "full", P: 8},
		{App: "cg", Scale: spasm.Small, Seed: 1, Machine: spasm.CLogP, Topology: "full", P: 8},
		{App: "cg", Scale: spasm.Small, Seed: 1, Machine: spasm.Target, Topology: "mesh", P: 8},
		{App: "cg", Scale: spasm.Small, Seed: 1, Machine: spasm.Target, Topology: "full", P: 16},
		{App: "cg", Scale: spasm.Small, Seed: 1, Machine: spasm.Target, Topology: "full", P: 8, PortMode: spasm.PerClassGap},
		{App: "cg", Scale: spasm.Small, Seed: 1, Machine: spasm.Target, Topology: "full", P: 8, Protocol: spasm.MSIProtocol},
		{App: "cg", Scale: spasm.Small, Seed: 1, Machine: spasm.Flow, Topology: "full", P: 8},
		{App: "cg", Scale: spasm.Small, Seed: 1, Machine: spasm.Flow, Topology: "full", P: 8, Adaptive: true},
		{App: "cg", Scale: spasm.Small, Seed: 1, Machine: spasm.Flow, Topology: "full", P: 8, Adaptive: true, EscalatePct: 60},
	}
	seen := map[string]bool{base.Key(): true}
	for i, v := range variants {
		if seen[v.Key()] {
			t.Fatalf("variant %d has a colliding key %q", i, v.Key())
		}
		seen[v.Key()] = true
	}
}

func TestSpecHashForm(t *testing.T) {
	h := spasm.Spec{App: "ep", P: 2}.Hash()
	if !regexp.MustCompile(`^[0-9a-f]{64}$`).MatchString(h) {
		t.Fatalf("Hash() = %q, want 64 lowercase hex chars", h)
	}
}

func TestSpecValidate(t *testing.T) {
	if err := (spasm.Spec{App: "nope", P: 2}).Validate(); err == nil {
		t.Fatal("unknown app accepted")
	}
	if err := (spasm.Spec{App: "fft", P: 0}).Validate(); err == nil {
		t.Fatal("P=0 accepted")
	}
	if err := (spasm.Spec{App: "mg", P: 2}).Validate(); err != nil {
		t.Fatalf("extension workload rejected: %v", err)
	}
	if err := (spasm.Spec{App: "fft", Adaptive: true, Machine: spasm.Flow, P: 4}).Validate(); err != nil {
		t.Fatalf("adaptive flow spec rejected: %v", err)
	}
}

// TestSpecValidateMaxP: processor counts beyond a machine kind's limit
// are rejected with an error naming the kind and its bound — no spec
// should ever reach the coherence engine's internal panic.
func TestSpecValidateMaxP(t *testing.T) {
	for _, kind := range []spasm.Kind{spasm.Ideal, spasm.Flow, spasm.LogP, spasm.CLogP, spasm.Target} {
		max := spasm.MaxPFor(kind)
		if max < 1024 {
			t.Errorf("%v: limit %d below the 1024-processor floor", kind, max)
		}
		at := spasm.Spec{App: "fft", Machine: kind, P: max}
		if err := at.Validate(); err != nil {
			t.Errorf("%v: P at the limit (%d) rejected: %v", kind, max, err)
		}
		over := spasm.Spec{App: "fft", Machine: kind, P: max + 1}
		err := over.Validate()
		if err == nil {
			t.Errorf("%v: P=%d (over the %d limit) accepted", kind, max+1, max)
			continue
		}
		msg := err.Error()
		if !strings.Contains(msg, kind.String()) || !strings.Contains(msg, strconv.Itoa(max)) {
			t.Errorf("%v: error %q does not name the kind and its limit %d", kind, msg, max)
		}
	}
	// The coherent machines are bounded by the directory representation.
	if got := spasm.MaxPFor(spasm.Target); got != 1024 {
		t.Errorf("target limit = %d, want 1024", got)
	}
}

// TestSpecValidateEnums: every enumerated field rejects out-of-range
// values with an error that names the valid choices.
func TestSpecValidateEnums(t *testing.T) {
	ok := spasm.Spec{App: "fft", Machine: spasm.Flow, P: 4}
	cases := []struct {
		name string
		spec spasm.Spec
		want string // substring the error must carry: the valid choices
	}{
		{"scale", func(s spasm.Spec) spasm.Spec { s.Scale = 9; return s }(ok), "tiny, small, medium"},
		{"machine", func(s spasm.Spec) spasm.Spec { s.Machine = 99; return s }(ok), "flow"},
		{"topology", func(s spasm.Spec) spasm.Spec { s.Topology = "star"; return s }(ok), "torus"},
		{"portmode", func(s spasm.Spec) spasm.Spec { s.PortMode = 7; return s }(ok), "combined"},
		{"protocol", func(s spasm.Spec) spasm.Spec { s.Protocol = 9; return s }(ok), "berkeley, msi, update"},
		{"escalate-low", func(s spasm.Spec) spasm.Spec { s.Adaptive = true; s.EscalatePct = -1; return s }(ok), "0-100"},
		{"escalate-high", func(s spasm.Spec) spasm.Spec { s.Adaptive = true; s.EscalatePct = 101; return s }(ok), "0-100"},
		{"adaptive-machine", func(s spasm.Spec) spasm.Spec { s.Machine = spasm.Target; s.Adaptive = true; return s }(ok), "flow"},
	}
	for _, c := range cases {
		err := c.spec.Validate()
		if err == nil {
			t.Errorf("%s: invalid spec accepted", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not list valid choices (want substring %q)", c.name, err, c.want)
		}
	}
	if err := ok.Validate(); err != nil {
		t.Fatalf("base spec invalid: %v", err)
	}
}

// TestSpecAdaptiveCanonical: EscalatePct without Adaptive is inert and
// must not split the content address.
func TestSpecAdaptiveCanonical(t *testing.T) {
	a := spasm.Spec{App: "fft", Machine: spasm.Flow, P: 4}
	b := a
	b.EscalatePct = 40
	if a.Key() != b.Key() {
		t.Fatalf("inert EscalatePct split the key:\n  %q\n  %q", a.Key(), b.Key())
	}
}

// TestRunSpecMatchesRun: RunSpec is the same deterministic run as the
// positional Run API.
func TestRunSpecMatchesRun(t *testing.T) {
	spec := spasm.Spec{App: "fft", Scale: spasm.Tiny, Seed: 1, Machine: spasm.LogP, Topology: "cube", P: 4}
	a, err := spasm.RunSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := spasm.Run("fft", spasm.Tiny, 1, spasm.Config{Kind: spasm.LogP, Topology: "cube", P: 4})
	if err != nil {
		t.Fatal(err)
	}
	if a.Stats.Total != b.Stats.Total {
		t.Fatalf("total differs: RunSpec %v, Run %v", a.Stats.Total, b.Stats.Total)
	}
	for _, bkt := range []spasm.Bucket{spasm.Compute, spasm.Memory, spasm.Latency, spasm.Contention, spasm.Sync} {
		if a.Stats.Sum(bkt) != b.Stats.Sum(bkt) {
			t.Fatalf("%v differs: RunSpec %v, Run %v", bkt, a.Stats.Sum(bkt), b.Stats.Sum(bkt))
		}
	}
	if a.Stats.Messages() != b.Stats.Messages() {
		t.Fatalf("messages differ: RunSpec %d, Run %d", a.Stats.Messages(), b.Stats.Messages())
	}
}
