package exp

import (
	"fmt"

	"spasm/internal/app"
	"spasm/internal/apps"
	"spasm/internal/cache"
	"spasm/internal/coherence"
	"spasm/internal/logp"
	"spasm/internal/machine"
	"spasm/internal/mem"
	"spasm/internal/network"
	"spasm/internal/sim"
	"spasm/internal/stats"
	"spasm/internal/trace"
)

// This file implements the reproduction's extension studies — each one
// grounded in a specific claim or proposal in the paper:
//
//   - ProtocolComparison (section 7, citing Wood et al.): performance
//     should not be very sensitive to the coherence protocol.  Compared:
//     Berkeley (the paper's target), plain MSI, and — to show where the
//     claim's invalidation-protocol scope ends — write-update.
//   - CacheSweep (section 2, citing Rothberg/Singh/Gupta): a 64 KB
//     cache captures the important working set of these applications.
//   - AdaptiveGapStudy (section 7 future work): g scaled online by the
//     observed fraction of bisection-crossing traffic.
//   - EffectiveLStudy (section 6.1): L's fixed 32-byte pricing separated
//     from its missing-coherence-traffic optimism.
//   - TraceDrivenStudy: execution-driven vs trace-driven methodology.
//   - BandwidthStudy: per-application communication demand (the
//     authors' companion TR).
//   - TechnologyStudy: link-bandwidth scaling vs abstraction accuracy.
//   - DegradedLinkStudy: a per-link fault the L/g abstraction cannot
//     express.
//   - TopologyStudy: the accuracy question asked of ring and torus.
//   - PlacementStudy: blocked vs interleaved data placement.
//   - ExtendedAppStudy: out-of-sample validation on the multigrid
//     workload.

// TraceRow compares execution-driven and trace-driven simulation of one
// application on the evaluation machine.
type TraceRow struct {
	App string
	// ExecDriven is the execution-driven execution time on the
	// evaluation machine (us).
	ExecDriven float64
	// TraceDriven is the execution time of replaying, on the
	// evaluation machine, a trace recorded on the recording machine.
	TraceDriven float64
	// Events is the trace length.
	Events int
}

// TraceDrivenStudy records every application's reference trace on the
// CLogP machine and replays it on the target machine, contrasting
// trace-driven against execution-driven simulation.  Two classic
// trace-driven artifacts appear: (a) inter-reference gaps recorded on
// the trace machine embed its *synchronization waiting* (spin-lock and
// barrier stalls), dilating the replay even for static applications;
// (b) dynamically scheduled applications (CHOLESKY) additionally carry
// the recording machine's task schedule into the replay.  Both are the
// methodological hazards the authors' companion work examines — the
// reason SPASM is execution-driven.
func TraceDrivenStudy(scale apps.Scale, seed int64, topo string, p int) ([]TraceRow, error) {
	var out []TraceRow
	for _, name := range apps.Names() {
		prog, err := apps.New(name, scale, seed)
		if err != nil {
			return nil, err
		}
		var rec *trace.Recorder
		recRes, err := app.RunWrapped(prog, machine.Config{
			Kind: machine.CLogP, Topology: topo, P: p,
		}, func(m machine.Machine) machine.Machine {
			rec = trace.NewRecorder(m)
			return rec
		})
		if err != nil {
			return nil, err
		}
		tr := rec.Trace(recRes.Space)

		execDriven, err := runOnce(name, scale, seed, machine.Config{
			Kind: machine.Target, Topology: topo, P: p,
		})
		if err != nil {
			return nil, err
		}
		replayed, err := app.Run(trace.Replay(tr), machine.Config{
			Kind: machine.Target, Topology: topo, P: p,
		})
		if err != nil {
			return nil, err
		}
		out = append(out, TraceRow{
			App:         name,
			ExecDriven:  execDriven.Total.Micros(),
			TraceDriven: replayed.Stats.Total.Micros(),
			Events:      len(tr.Events),
		})
	}
	return out, nil
}

// runOnce builds and runs one application on one fully custom config.
func runOnce(appName string, scale apps.Scale, seed int64, cfg machine.Config) (*stats.Run, error) {
	prog, err := apps.New(appName, scale, seed)
	if err != nil {
		return nil, err
	}
	res, err := app.Run(prog, cfg)
	if err != nil {
		return nil, err
	}
	return res.Stats, nil
}

// ProtocolRow compares coherence protocols for one application.
type ProtocolRow struct {
	App      string
	Berkeley float64 // target execution time, us
	MSI      float64 // target execution time, us
	Update   float64 // target execution time, us (write-update protocol)
	CLogP    float64 // ideal-cache execution time, us
	// Per-protocol traffic volumes.
	BerkeleyMsgs uint64
	MSIMsgs      uint64
	UpdateMsgs   uint64
}

// ProtocolComparison runs the whole suite on the target machine under
// both protocols (plus the CLogP reference) at the given topology and
// processor count.
func ProtocolComparison(scale apps.Scale, seed int64, topo string, p int) ([]ProtocolRow, error) {
	var out []ProtocolRow
	for _, name := range apps.Names() {
		row := ProtocolRow{App: name}
		bk, err := runOnce(name, scale, seed, machine.Config{
			Kind: machine.Target, Topology: topo, P: p, Protocol: coherence.Berkeley,
		})
		if err != nil {
			return nil, err
		}
		ms, err := runOnce(name, scale, seed, machine.Config{
			Kind: machine.Target, Topology: topo, P: p, Protocol: coherence.MSI,
		})
		if err != nil {
			return nil, err
		}
		up, err := runOnce(name, scale, seed, machine.Config{
			Kind: machine.Target, Topology: topo, P: p, Protocol: coherence.Update,
		})
		if err != nil {
			return nil, err
		}
		cl, err := runOnce(name, scale, seed, machine.Config{
			Kind: machine.CLogP, Topology: topo, P: p,
		})
		if err != nil {
			return nil, err
		}
		row.Berkeley = bk.Total.Micros()
		row.MSI = ms.Total.Micros()
		row.Update = up.Total.Micros()
		row.CLogP = cl.Total.Micros()
		row.BerkeleyMsgs = bk.Messages()
		row.MSIMsgs = ms.Messages()
		row.UpdateMsgs = up.Messages()
		out = append(out, row)
	}
	return out, nil
}

// BandwidthRow characterizes one application's communication demand —
// the question of the authors' companion technical report "On
// characterizing bandwidth requirements of parallel applications".
type BandwidthRow struct {
	App string
	P   int
	// PerProcMBps is the application's true communication demand per
	// processor, measured on the ideal-cache machine (coherence
	// artifacts excluded): network bytes / processor / simulated
	// second, in MB/s.
	PerProcMBps float64
	// TargetMBps is the same measurement on the detailed target
	// machine, coherence traffic included.
	TargetMBps float64
	// LinkMBps is the per-link bandwidth of the modeled hardware, for
	// comparison (the paper's links are 20 MB/s).
	LinkMBps float64
}

// BandwidthStudy measures each application's per-processor bandwidth
// demand at the given processor count.
func BandwidthStudy(scale apps.Scale, seed int64, topo string, p int) ([]BandwidthRow, error) {
	const linkMBps = 20.0
	var out []BandwidthRow
	for _, name := range apps.Names() {
		cl, err := runOnce(name, scale, seed, machine.Config{
			Kind: machine.CLogP, Topology: topo, P: p,
		})
		if err != nil {
			return nil, err
		}
		tgt, err := runOnce(name, scale, seed, machine.Config{
			Kind: machine.Target, Topology: topo, P: p,
		})
		if err != nil {
			return nil, err
		}
		mbps := func(r *stats.Run) float64 {
			secs := r.Total.Micros() / 1e6
			if secs <= 0 {
				return 0
			}
			bytes := float64(r.Count(func(q *stats.Proc) uint64 { return q.NetBytes }))
			return bytes / float64(p) / secs / 1e6
		}
		out = append(out, BandwidthRow{
			App:         name,
			P:           p,
			PerProcMBps: mbps(cl),
			TargetMBps:  mbps(tgt),
			LinkMBps:    linkMBps,
		})
	}
	return out, nil
}

// CacheRow is one point of the cache-size sweep.
type CacheRow struct {
	SizeKB   int
	MissRate float64 // misses / references
	Exec     float64 // execution time, us
}

// CacheSweep runs one application on the target machine across cache
// sizes (keeping the paper's 2-way associativity and 32-byte blocks).
func CacheSweep(appName string, scale apps.Scale, seed int64, topo string, p int, sizesKB []int) ([]CacheRow, error) {
	var out []CacheRow
	for _, kb := range sizesKB {
		r, err := runOnce(appName, scale, seed, machine.Config{
			Kind:     machine.Target,
			Topology: topo,
			P:        p,
			Cache:    cache.Config{SizeBytes: kb * 1024, BlockBytes: 32, Assoc: 2},
		})
		if err != nil {
			return nil, fmt.Errorf("cache sweep %dKB: %w", kb, err)
		}
		hits := r.Count(func(q *stats.Proc) uint64 { return q.Hits })
		misses := r.Count(func(q *stats.Proc) uint64 { return q.Misses })
		row := CacheRow{SizeKB: kb, Exec: r.Total.Micros()}
		if hits+misses > 0 {
			row.MissRate = float64(misses) / float64(hits+misses)
		}
		out = append(out, row)
	}
	return out, nil
}

// AdaptiveRow is one sweep point of the adaptive-g study.
type AdaptiveRow struct {
	P        int
	Target   float64 // detailed-network contention, us
	Static   float64 // CLogP contention with the bisection-derived g
	Adaptive float64 // CLogP contention with history-scaled g
}

// AdaptiveGapStudy evaluates the paper's proposed history-based g
// estimation for one application and topology: the adaptive gap should
// land between the static estimate and the target, recovering the
// communication locality the static derivation ignores.
func AdaptiveGapStudy(appName string, scale apps.Scale, seed int64, topo string, procs []int) ([]AdaptiveRow, error) {
	var out []AdaptiveRow
	for _, p := range procs {
		tgt, err := runOnce(appName, scale, seed, machine.Config{
			Kind: machine.Target, Topology: topo, P: p,
		})
		if err != nil {
			return nil, err
		}
		static, err := runOnce(appName, scale, seed, machine.Config{
			Kind: machine.CLogP, Topology: topo, P: p,
		})
		if err != nil {
			return nil, err
		}
		adaptive, err := runOnce(appName, scale, seed, machine.Config{
			Kind: machine.CLogP, Topology: topo, P: p, AdaptiveG: true,
		})
		if err != nil {
			return nil, err
		}
		out = append(out, AdaptiveRow{
			P:        p,
			Target:   Value(ContentionOvh, tgt),
			Static:   Value(ContentionOvh, static),
			Adaptive: Value(ContentionOvh, adaptive),
		})
	}
	return out, nil
}

// ExtendedAppRow is one sweep point of the out-of-suite validation.
type ExtendedAppRow struct {
	P          int
	TargetExec float64
	CLogPExec  float64
	LogPExec   float64
	// CLogPLatencyRatio is CLogP/Target latency overhead — the
	// paper's primary accuracy measure, asked of a workload the paper
	// never ran.
	CLogPLatencyRatio float64
}

// ExtendedAppStudy runs an extension workload (e.g. the hierarchical
// multigrid solver) through the paper's machine comparison: an
// out-of-sample test of the abstractions on communication structure the
// original suite does not contain.
func ExtendedAppStudy(appName string, scale apps.Scale, seed int64, topo string, procs []int) ([]ExtendedAppRow, error) {
	runExt := func(kind machine.Kind, p int) (*stats.Run, error) {
		prog, err := apps.NewExtended(appName, scale, seed)
		if err != nil {
			return nil, err
		}
		res, err := app.Run(prog, machine.Config{Kind: kind, Topology: topo, P: p})
		if err != nil {
			return nil, err
		}
		return res.Stats, nil
	}
	var out []ExtendedAppRow
	for _, p := range procs {
		tgt, err := runExt(machine.Target, p)
		if err != nil {
			return nil, err
		}
		cl, err := runExt(machine.CLogP, p)
		if err != nil {
			return nil, err
		}
		lp, err := runExt(machine.LogP, p)
		if err != nil {
			return nil, err
		}
		row := ExtendedAppRow{
			P:          p,
			TargetExec: tgt.Total.Micros(),
			CLogPExec:  cl.Total.Micros(),
			LogPExec:   lp.Total.Micros(),
		}
		if tl := Value(LatencyOvh, tgt); tl > 0 {
			row.CLogPLatencyRatio = Value(LatencyOvh, cl) / tl
		}
		out = append(out, row)
	}
	return out, nil
}

// TopologyRow is one point of the extended-topology comparison.
type TopologyRow struct {
	Topology   string
	TargetExec float64 // detailed-network execution time, us
	CLogPExec  float64 // abstraction execution time, us
	Ratio      float64 // CLogP / Target
	G          sim.Time
}

// TopologyStudy runs one application on the target and CLogP machines
// across every available topology (the paper's three plus ring and
// torus), asking the paper's accuracy question of networks it did not
// measure.  Expectation from the paper's analysis: the lower the
// connectivity (ring worst), the more pessimistic the
// bisection-derived g makes the abstraction.
func TopologyStudy(appName string, scale apps.Scale, seed int64, p int) ([]TopologyRow, error) {
	var out []TopologyRow
	for _, topo := range network.Names() {
		tgt, err := runOnce(appName, scale, seed, machine.Config{
			Kind: machine.Target, Topology: topo, P: p,
		})
		if err != nil {
			return nil, err
		}
		cl, err := runOnce(appName, scale, seed, machine.Config{
			Kind: machine.CLogP, Topology: topo, P: p,
		})
		if err != nil {
			return nil, err
		}
		t, err := network.New(topo, p)
		if err != nil {
			return nil, err
		}
		row := TopologyRow{
			Topology:   topo,
			TargetExec: tgt.Total.Micros(),
			CLogPExec:  cl.Total.Micros(),
			G:          logp.GapFor(t, 32, sim.SerialByte),
		}
		if row.TargetExec > 0 {
			row.Ratio = row.CLogPExec / row.TargetExec
		}
		out = append(out, row)
	}
	return out, nil
}

// PlacementRow is one point of the data-placement study.
type PlacementRow struct {
	Placement  mem.Policy
	TargetExec float64
	Latency    float64 // target latency overhead, us
	Misses     uint64
}

// PlacementStudy contrasts the suite's natural blocked placement of
// CG's vectors against round-robin interleaving on the target machine:
// the locality the paper's cache abstraction must capture exists only
// if the data layout creates it in the first place.
func PlacementStudy(scale apps.Scale, seed int64, topo string, p int) ([]PlacementRow, error) {
	var out []PlacementRow
	for _, pol := range []mem.Policy{mem.Blocked, mem.Interleaved} {
		prog, err := apps.New("cg", scale, seed)
		if err != nil {
			return nil, err
		}
		prog.(*apps.CG).Placement = pol
		res, err := app.Run(prog, machine.Config{
			Kind: machine.Target, Topology: topo, P: p,
		})
		if err != nil {
			return nil, err
		}
		r := res.Stats
		out = append(out, PlacementRow{
			Placement:  pol,
			TargetExec: r.Total.Micros(),
			Latency:    sim.Time(r.Sum(stats.Latency)).Micros(),
			Misses:     r.Count(func(q *stats.Proc) uint64 { return q.Misses }),
		})
	}
	return out, nil
}

// FaultRow is one point of the degraded-link study.
type FaultRow struct {
	// Factor is the slowdown of the degraded link (1 = healthy).
	Factor int
	// TargetExec is the execution time on the detailed network, which
	// routes real circuits through the degraded link (us).
	TargetExec float64
	// CLogPExec is the abstraction's execution time — unchanged by
	// construction, since L and g carry no per-link information.
	CLogPExec float64
}

// DegradedLinkStudy injects a slow link into the middle of the mesh and
// measures the impact: the detailed target simulation sees circuits
// queueing behind the degraded link, while the L/g abstraction is
// structurally blind to any single-link property — a concrete boundary
// of the network abstraction the paper evaluates.
func DegradedLinkStudy(appName string, scale apps.Scale, seed int64, p int, factors []int) ([]FaultRow, error) {
	topo, err := network.New("mesh", p)
	if err != nil {
		return nil, err
	}
	mesh := topo.(*network.Mesh)
	// Degrade an east link in the middle of the mesh, on the row-0
	// path that X-first routing funnels traffic through.
	victim := (mesh.Cols()/2 - 1) * 4 // node (0, cols/2-1), east direction

	var out []FaultRow
	for _, factor := range factors {
		prog, err := apps.New(appName, scale, seed)
		if err != nil {
			return nil, err
		}
		factor := factor
		res, err := app.RunWrapped(prog, machine.Config{
			Kind: machine.Target, Topology: "mesh", P: p,
		}, func(m machine.Machine) machine.Machine {
			if factor > 1 {
				m.(machine.Networked).Fabric().Degrade(victim, factor)
			}
			return m
		})
		if err != nil {
			return nil, err
		}
		cl, err := runOnce(appName, scale, seed, machine.Config{
			Kind: machine.CLogP, Topology: "mesh", P: p,
		})
		if err != nil {
			return nil, err
		}
		out = append(out, FaultRow{
			Factor:     factor,
			TargetExec: res.Stats.Total.Micros(),
			CLogPExec:  cl.Total.Micros(),
		})
	}
	return out, nil
}

// TechRow is one point of the technology-scaling study.
type TechRow struct {
	LinkMBps float64
	// TargetExec and CLogPExec are execution times (us) at this link
	// speed; Ratio is CLogP/Target — how the abstraction's accuracy
	// moves as the network gets faster relative to the processor.
	TargetExec float64
	CLogPExec  float64
	Ratio      float64
}

// TechnologyStudy re-runs one application while scaling the link
// bandwidth (and, coherently, L and g, which are derived from it): as
// the network speeds up relative to the fixed 33 MHz processor, network
// overheads shrink and the abstractions converge on the target.
func TechnologyStudy(appName string, scale apps.Scale, seed int64, topo string, p int, mbps []float64) ([]TechRow, error) {
	var out []TechRow
	for _, m := range mbps {
		// byteTime = 1e6/m bytes/s in Time units: 20 MB/s = 33 units.
		byteTime := sim.Micros(1.0 / m)
		if byteTime < 1 {
			byteTime = 1
		}
		tgt, err := runOnce(appName, scale, seed, machine.Config{
			Kind: machine.Target, Topology: topo, P: p, LinkByteTime: byteTime,
		})
		if err != nil {
			return nil, err
		}
		cl, err := runOnce(appName, scale, seed, machine.Config{
			Kind: machine.CLogP, Topology: topo, P: p, LinkByteTime: byteTime,
		})
		if err != nil {
			return nil, err
		}
		row := TechRow{
			LinkMBps:   m,
			TargetExec: tgt.Total.Micros(),
			CLogPExec:  cl.Total.Micros(),
		}
		if row.TargetExec > 0 {
			row.Ratio = row.CLogPExec / row.TargetExec
		}
		out = append(out, row)
	}
	return out, nil
}

// LRow is one sweep point of the effective-L study.
type LRow struct {
	P             int
	MeanMsgBytes  float64
	TargetLatency float64 // us
	L32Latency    float64 // CLogP latency with the paper's 32-byte L
	EffLatency    float64 // CLogP latency with L from measured mean size
}

// EffectiveLStudy measures the target machine's mean message size for an
// application and re-derives L from it, quantifying how much of the
// L-parameter's latency pessimism is the fixed 32-byte assumption.
func EffectiveLStudy(appName string, scale apps.Scale, seed int64, topo string, procs []int) ([]LRow, error) {
	var out []LRow
	for _, p := range procs {
		tgt, err := runOnce(appName, scale, seed, machine.Config{
			Kind: machine.Target, Topology: topo, P: p,
		})
		if err != nil {
			return nil, err
		}
		msgs := tgt.Messages()
		bytes := tgt.Count(func(q *stats.Proc) uint64 { return q.NetBytes })
		mean := 0.0
		if msgs > 0 {
			mean = float64(bytes) / float64(msgs)
		}
		l32, err := runOnce(appName, scale, seed, machine.Config{
			Kind: machine.CLogP, Topology: topo, P: p,
		})
		if err != nil {
			return nil, err
		}
		leff := sim.Time(mean * float64(sim.SerialByte))
		if leff < 1 {
			leff = 1
		}
		eff, err := runOnce(appName, scale, seed, machine.Config{
			Kind: machine.CLogP, Topology: topo, P: p, L: leff,
		})
		if err != nil {
			return nil, err
		}
		out = append(out, LRow{
			P:             p,
			MeanMsgBytes:  mean,
			TargetLatency: Value(LatencyOvh, tgt),
			L32Latency:    Value(LatencyOvh, l32),
			EffLatency:    Value(LatencyOvh, eff),
		})
	}
	return out, nil
}
