package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"spasm/internal/probe"
	"spasm/internal/stats"
)

// SSE event names on /v1/runs/{id}/stream.
const (
	eventState  = "state"  // lifecycle transition (RunStatus JSON)
	eventEpoch  = "epoch"  // one live profile epoch (streamEpochDoc JSON)
	eventResult = "result" // terminal status with the RunDoc (RunStatus JSON)
)

// streamEvent is one rendered SSE event.
type streamEvent struct {
	name string
	data []byte
}

// streamHub is a job's event log for live streaming: the worker appends
// events as the run executes, and any number of subscribers replay the
// log from the start and then follow the tail.  Keeping the full log
// (rather than fan-out channels) means a subscriber attaching mid-run
// sees every epoch, a slow subscriber loses nothing, and nobody can
// block the simulation goroutine.  The log is bounded by the probe's
// epoch budget, and it dies with the job.
type streamHub struct {
	mu     sync.Mutex
	events []streamEvent
	done   bool
	update chan struct{} // closed and replaced on every append
}

func newStreamHub() *streamHub {
	return &streamHub{update: make(chan struct{})}
}

// publish appends one event.  v is marshaled immediately so the caller
// (often the simulation goroutine, via the probe's OnEpoch hook) never
// retains shared state in the log.
func (h *streamHub) publish(name string, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		return
	}
	h.mu.Lock()
	if !h.done {
		h.events = append(h.events, streamEvent{name: name, data: data})
		close(h.update)
		h.update = make(chan struct{})
	}
	h.mu.Unlock()
}

// finish seals the log: no further events, and every subscriber's next
// wait returns immediately.  Idempotent.
func (h *streamHub) finish() {
	h.mu.Lock()
	if !h.done {
		h.done = true
		close(h.update)
	}
	h.mu.Unlock()
}

// snapshot returns the events at and past index i, whether the log is
// sealed, and a channel that closes on the next append (or is already
// closed once sealed).  The returned slice is capped so subscribers can
// never see later appends through it.
func (h *streamHub) snapshot(i int) (evs []streamEvent, done bool, wait <-chan struct{}) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if i < len(h.events) {
		evs = h.events[i:len(h.events):len(h.events)]
	}
	return evs, h.done, h.update
}

// streamEpochDoc is the wire form of one live profile epoch — the
// ProfileEpochDoc fields that are computable from a single epoch event,
// plus the event's own resolution.  Epochs are provisional: after a
// profile rescale the covered timeline is re-emitted at the doubled
// epoch_us, so consumers reconciling a timeline must treat a new event
// overlapping an earlier window as its replacement.  The canonical
// profile remains GET /v1/runs/{id}/profile after completion.
type streamEpochDoc struct {
	Index   int     `json:"index"`
	EpochUS float64 `json:"epoch_us"`
	StartUS float64 `json:"start_us"`

	ComputeUS    float64 `json:"compute_us"`
	MemoryUS     float64 `json:"memory_us"`
	LatencyUS    float64 `json:"latency_us"`
	ContentionUS float64 `json:"contention_us"`
	SyncUS       float64 `json:"sync_us"`

	Misses     uint64 `json:"misses"`
	Invals     uint64 `json:"invals"`
	Writebacks uint64 `json:"writebacks"`
	Messages   uint64 `json:"messages"`

	LinkUtil    float64 `json:"link_util,omitempty"`
	MaxLinkUtil float64 `json:"max_link_util,omitempty"`

	Final bool `json:"final,omitempty"`
}

// streamEpoch renders a probe epoch event for the SSE stream.
func streamEpoch(ev probe.EpochEvent) streamEpochDoc {
	d := streamEpochDoc{
		Index:        ev.Index,
		EpochUS:      ev.EpochLen.Micros(),
		StartUS:      ev.Start.Micros(),
		ComputeUS:    ev.Buckets[stats.Compute].Micros(),
		MemoryUS:     ev.Buckets[stats.Memory].Micros(),
		LatencyUS:    ev.Buckets[stats.Latency].Micros(),
		ContentionUS: ev.Buckets[stats.Contention].Micros(),
		SyncUS:       ev.Buckets[stats.Sync].Micros(),
		Misses:       ev.Misses,
		Invals:       ev.Invals,
		Writebacks:   ev.Writebacks,
		Messages:     ev.Messages,
		Final:        ev.Final,
	}
	d.LinkUtil, d.MaxLinkUtil = ev.Utilization()
	return d
}

// handleStream serves GET /v1/runs/{id}/stream: a Server-Sent-Events
// feed of the run's lifecycle.  For a job that streams from the start
// (submitted with ?stream=1, or attached to while still pending) the
// feed carries live "epoch" events as the probe closes epochs; a feed
// attached to an already-running job, or to an adaptive run, skips the
// epochs and delivers the terminal "result" only.  Completed runs —
// cached in memory or on disk — answer with their single "result"
// event immediately.
//
// The subscription counts as a waiter: a pending, unpinned job whose
// streaming clients all disconnect is canceled before it burns a
// worker, exactly like SubmitWaited departures.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	if j, ok := s.active[id]; ok {
		if j.state == StatePending && j.hub == nil {
			// First streaming subscriber before dispatch: the worker will
			// see the hub at pick-up and run the instrumented path.
			j.hub = newStreamHub()
		}
		j.waiters++
		s.mu.Unlock()
		var once sync.Once
		release := func() { once.Do(func() { s.releaseWaiter(j) }) }
		defer release()
		s.serveStream(w, r, j)
		return
	}
	e, ok := s.cache.get(id, false)
	if !ok {
		e, ok = s.neg.get(id, time.Now(), false)
	}
	if !ok {
		e, ok = s.storeLookupLocked(id)
	}
	s.mu.Unlock()
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("no such run %q", id))
		return
	}
	j := &Job{id: e.id, req: e.req, entry: e, done: closedChan, state: StateDone, cached: true}
	s.serveStream(w, r, j)
}

// serveStream writes the SSE feed for j until the run completes or the
// client disconnects.  j's hub may be nil (no live epochs); j.done and
// j.entry then carry the terminal event.
func (s *Server) serveStream(w http.ResponseWriter, r *http.Request, j *Job) {
	fl, ok := w.(http.Flusher)
	if !ok {
		writeErr(w, http.StatusInternalServerError, errors.New("streaming unsupported by this connection"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	s.metrics.streamOpen(1)
	defer s.metrics.streamOpen(-1)

	write := func(ev streamEvent) {
		fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.name, ev.data)
	}

	s.mu.Lock()
	hub := j.hub
	st := RunStatus{ID: j.id, State: j.state, Spec: j.req}
	if j.entry != nil {
		st = statusFromEntry(j.entry, j.cached)
	}
	s.mu.Unlock()

	if hub == nil {
		// No live feed: one state event now, the result when it lands.
		if terminalState(st.State) {
			data, _ := json.Marshal(st)
			write(streamEvent{eventResult, data})
			fl.Flush()
			return
		}
		data, _ := json.Marshal(st)
		write(streamEvent{eventState, data})
		fl.Flush()
		select {
		case <-j.done:
		case <-r.Context().Done():
			return
		}
		s.mu.Lock()
		data, _ = json.Marshal(statusFromEntry(j.entry, false))
		s.mu.Unlock()
		write(streamEvent{eventResult, data})
		fl.Flush()
		return
	}

	// Live feed: announce the current state, then replay the hub's log
	// and follow its tail.
	data, _ := json.Marshal(st)
	write(streamEvent{eventState, data})
	fl.Flush()

	keep := time.NewTicker(15 * time.Second)
	defer keep.Stop()
	i := 0
	for {
		evs, done, wait := hub.snapshot(i)
		if len(evs) > 0 {
			for _, ev := range evs {
				write(ev)
			}
			i += len(evs)
			fl.Flush()
			continue
		}
		if done {
			return
		}
		select {
		case <-wait:
		case <-keep.C:
			// SSE comment line: keeps idle proxies from timing the
			// connection out during a long simulation.
			fmt.Fprint(w, ": keep-alive\n\n")
			fl.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

func terminalState(st State) bool {
	return st == StateDone || st == StateFailed || st == StateCanceled
}
