package spasm

import (
	"strings"
	"testing"
)

func TestFacadeRun(t *testing.T) {
	res, err := Run("ep", Tiny, 1, Config{Kind: Target, Topology: "full", P: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Total <= 0 {
		t.Error("no simulated time")
	}
	if res.Stats.P() != 4 {
		t.Errorf("P = %d", res.Stats.P())
	}
}

func TestFacadeLists(t *testing.T) {
	if len(Apps()) != 5 {
		t.Errorf("apps = %v", Apps())
	}
	if len(Machines()) != 5 {
		t.Errorf("machines = %v", Machines())
	}
	if len(Figures()) != 20 {
		t.Errorf("%d figures", len(Figures()))
	}
}

func TestFacadeFigurePipeline(t *testing.T) {
	s := NewSession(Options{Scale: Tiny, Procs: []int{2, 4}})
	fig, err := FigureByNumber(3)
	if err != nil {
		t.Fatal(err)
	}
	fr, err := s.Figure(fig)
	if err != nil {
		t.Fatal(err)
	}
	if out := FigureTable(fr); !strings.Contains(out, "Figure 3") {
		t.Errorf("table:\n%s", out)
	}
	if out := FigureCSV(fr); !strings.Contains(out, "3,ep,full,latency") {
		t.Errorf("csv:\n%s", out)
	}
	if out := FigureChart(fr, 70, 18); !strings.Contains(out, "T=Target") {
		t.Errorf("chart:\n%s", out)
	}
}

func TestFacadeGapHelpers(t *testing.T) {
	rows := GapTable([]int{16})
	if len(rows) != 3 {
		t.Errorf("gap rows = %d", len(rows))
	}
	ab, err := GapAblation(Tiny, 1, []int{4})
	if err != nil || len(ab) != 1 {
		t.Errorf("ablation: %v, %v", ab, err)
	}
}

// customProgram exercises the program-authoring API through the facade
// aliases only — what an external user of the library would write.
type customProgram struct {
	arr *Array
	bar *Barrier
	sum int
}

func (c *customProgram) Name() string { return "custom" }
func (c *customProgram) Setup(ctx *Ctx) {
	c.arr = ctx.Space.Alloc("data", 64, 8, Blocked)
	c.bar = ctx.NewBarrier("bar", ctx.P, 0)
}
func (c *customProgram) Body(p *Proc) {
	lo, hi := p.ID*16, (p.ID+1)*16
	p.ReadRange(c.arr, lo, hi)
	p.Compute(100)
	c.sum += hi - lo
	c.bar.Arrive(p)
}
func (c *customProgram) Check() error { return nil }

func TestFacadeCustomProgram(t *testing.T) {
	prog := &customProgram{}
	res, err := RunProgram(prog, Config{Kind: CLogP, Topology: "cube", P: 4})
	if err != nil {
		t.Fatal(err)
	}
	if prog.sum != 64 {
		t.Errorf("sum = %d", prog.sum)
	}
	if res.Stats.Sum(Compute) <= 0 {
		t.Error("no compute time")
	}
}

func TestFacadeExtendedApps(t *testing.T) {
	if got := ExtendedApps(); len(got) != 2 || got[0] != "mg" || got[1] != "uniform" {
		t.Errorf("ExtendedApps() = %v, want [mg uniform]", got)
	}
	res, err := RunExtended("mg", Tiny, 1, Config{Kind: CLogP, Topology: "cube", P: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Total <= 0 {
		t.Error("empty mg run")
	}
	if _, err := RunExtended("nope", Tiny, 1, Config{Kind: Ideal, P: 2}); err == nil {
		t.Error("unknown extended workload accepted")
	}
}

func TestFacadeParsers(t *testing.T) {
	if k, err := ParseKind("clogp"); err != nil || k != CLogP {
		t.Errorf("ParseKind = %v, %v", k, err)
	}
	if _, err := ParseKind("z80"); err == nil {
		t.Error("bad kind accepted")
	}
	if s, err := ParseScale("medium"); err != nil || s != Medium {
		t.Errorf("ParseScale = %v, %v", s, err)
	}
	if _, err := ParseScale("huge"); err == nil {
		t.Error("bad scale accepted")
	}
	got, err := ParseProcs(" 2, 4,8 ")
	if err != nil || len(got) != 3 || got[0] != 2 || got[2] != 8 {
		t.Errorf("ParseProcs = %v, %v", got, err)
	}
	for _, bad := range []string{"", "a", "4,-1", "0"} {
		if _, err := ParseProcs(bad); err == nil {
			t.Errorf("ParseProcs(%q) accepted", bad)
		}
	}
}

func TestMicrosAlias(t *testing.T) {
	if Micros(1.6) != 1056 {
		t.Error("Micros alias broken")
	}
}
